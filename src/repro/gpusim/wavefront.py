"""SIMT lockstep cost law — per-wavefront timing from per-lane costs.

A wavefront executes all lanes in lockstep: its run time is the maximum
of its lanes' costs, and every cycle a lane sits below that maximum is a
*divergence* cycle in which SIMD hardware does nothing useful. These
functions turn a flat per-work-item cycle array into per-wavefront
costs and the divergence metrics the paper's imbalance figures report.

All functions are vectorized (``reduceat`` over wavefront boundaries)
and pure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "wavefront_costs",
    "wavefront_sums",
    "num_wavefronts",
    "simd_efficiency",
    "DivergenceStats",
    "divergence_stats",
]


def num_wavefronts(num_items: int, wavefront_size: int) -> int:
    """Wavefronts needed for ``num_items`` work-items (ceil division)."""
    if wavefront_size <= 0:
        raise ValueError("wavefront_size must be positive")
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    return -(-num_items // wavefront_size)


def _boundaries(num_items: int, wavefront_size: int) -> np.ndarray:
    return np.arange(0, num_items, wavefront_size, dtype=np.int64)


def wavefront_costs(item_cycles: np.ndarray, wavefront_size: int) -> np.ndarray:
    """Lockstep cost per wavefront: ``max`` over each group of lanes.

    Items are assigned to wavefronts positionally (item ``i`` → wavefront
    ``i // wavefront_size``); a trailing partial wavefront still costs
    its slowest lane.
    """
    cycles = np.asarray(item_cycles, dtype=np.float64).ravel()
    if cycles.size == 0:
        return np.empty(0, dtype=np.float64)
    if np.any(cycles < 0):
        raise ValueError("item costs must be non-negative")
    return np.maximum.reduceat(cycles, _boundaries(cycles.size, wavefront_size))


def wavefront_sums(item_cycles: np.ndarray, wavefront_size: int) -> np.ndarray:
    """Sum of lane costs per wavefront (the useful-work numerator)."""
    cycles = np.asarray(item_cycles, dtype=np.float64).ravel()
    if cycles.size == 0:
        return np.empty(0, dtype=np.float64)
    return np.add.reduceat(cycles, _boundaries(cycles.size, wavefront_size))


def simd_efficiency(item_cycles: np.ndarray, wavefront_size: int) -> float:
    """Fraction of lane-cycles doing useful work under lockstep.

    ``sum(lane costs) / (wavefront_size * sum(max per wavefront))`` —
    1.0 for perfectly uniform lanes, → 0 for a lone heavy lane. Partial
    trailing wavefronts are charged for their idle lanes too, exactly as
    hardware would.
    """
    cycles = np.asarray(item_cycles, dtype=np.float64).ravel()
    if cycles.size == 0:
        return 1.0
    peaks = wavefront_costs(cycles, wavefront_size)
    denom = wavefront_size * peaks.sum()
    if denom == 0:
        return 1.0
    return float(cycles.sum() / denom)


@dataclass(frozen=True)
class DivergenceStats:
    """Divergence summary for one kernel's work distribution."""

    num_wavefronts: int
    total_lockstep_cycles: float  # sum of per-wavefront maxima
    total_useful_cycles: float  # sum of per-lane costs
    simd_efficiency: float
    max_wavefront_cycles: float
    mean_wavefront_cycles: float
    wavefront_cv: float  # inter-wavefront imbalance

    def as_row(self) -> dict[str, object]:
        return {
            "wavefronts": self.num_wavefronts,
            "lockstep_cycles": round(self.total_lockstep_cycles, 1),
            "useful_cycles": round(self.total_useful_cycles, 1),
            "simd_eff": round(self.simd_efficiency, 4),
            "wf_max": round(self.max_wavefront_cycles, 1),
            "wf_mean": round(self.mean_wavefront_cycles, 1),
            "wf_cv": round(self.wavefront_cv, 4),
        }


def divergence_stats(item_cycles: np.ndarray, wavefront_size: int) -> DivergenceStats:
    """Full divergence/imbalance summary for a per-item cost array."""
    cycles = np.asarray(item_cycles, dtype=np.float64).ravel()
    peaks = wavefront_costs(cycles, wavefront_size)
    if peaks.size == 0:
        return DivergenceStats(0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0)
    mean = float(peaks.mean())
    cv = float(peaks.std() / mean) if mean > 0 else 0.0
    return DivergenceStats(
        num_wavefronts=int(peaks.size),
        total_lockstep_cycles=float(peaks.sum()),
        total_useful_cycles=float(cycles.sum()),
        simd_efficiency=simd_efficiency(cycles, wavefront_size),
        max_wavefront_cycles=float(peaks.max()),
        mean_wavefront_cycles=mean,
        wavefront_cv=cv,
    )

"""Run-level performance counters.

Real GPU profiling reads hardware counters per kernel and aggregates
them over a run; :class:`ExecutionCounters` is the simulator's
equivalent. The execution engine updates it on every timed iteration, so
after a coloring run you can ask where the time went — kernel launches
vs. compute vs. the DRAM roofline, how much steal traffic the run paid,
and the achieved bandwidth — the raw material of the paper's
"important factors affecting performance" analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import DeviceConfig

__all__ = ["ExecutionCounters"]


@dataclass
class ExecutionCounters:
    """Accumulated counters across a run's kernel launches."""

    kernels_launched: int = 0
    launch_cycles: float = 0.0
    compute_cycles: float = 0.0  # makespan portion attributed to compute
    bandwidth_bound_kernels: int = 0
    total_cycles: float = 0.0
    traffic_elements: float = 0.0
    work_items: int = 0
    steal_attempts: int = 0
    steals_succeeded: int = 0
    chunks_migrated: int = 0
    _eff_weighted: float = field(default=0.0, repr=False)
    _eff_weight: float = field(default=0.0, repr=False)

    # ------------------------------------------------------------------

    def observe_kernel(
        self,
        *,
        cycles: float,
        launch_cycles: float,
        bandwidth_bound: bool,
        traffic_elements: float,
        work_items: int,
        simd_efficiency: float | None = None,
    ) -> None:
        """Record one kernel launch's outcome."""
        self.kernels_launched += 1
        self.total_cycles += cycles
        self.launch_cycles += launch_cycles
        self.compute_cycles += max(cycles - launch_cycles, 0.0)
        if bandwidth_bound:
            self.bandwidth_bound_kernels += 1
        self.traffic_elements += traffic_elements
        self.work_items += int(work_items)
        if simd_efficiency is not None and work_items > 0:
            self._eff_weighted += simd_efficiency * work_items
            self._eff_weight += work_items

    def observe_stealing(
        self, *, attempts: int, succeeded: int, migrated: int
    ) -> None:
        """Record one persistent-kernel iteration's steal traffic."""
        self.steal_attempts += attempts
        self.steals_succeeded += succeeded
        self.chunks_migrated += migrated

    def reset(self) -> None:
        """Zero every counter (start a new measurement window)."""
        fresh = ExecutionCounters()
        for name in fresh.__dataclass_fields__:
            setattr(self, name, getattr(fresh, name))

    # ------------------------------------------------------------------

    @property
    def launch_overhead_fraction(self) -> float:
        """Share of total cycles spent in kernel launch/drain."""
        if self.total_cycles <= 0:
            return 0.0
        return self.launch_cycles / self.total_cycles

    @property
    def mean_simd_efficiency(self) -> float:
        """Work-item-weighted SIMD efficiency across launches."""
        if self._eff_weight == 0:
            return 1.0
        return self._eff_weighted / self._eff_weight

    @property
    def steal_success_rate(self) -> float:
        if self.steal_attempts == 0:
            return 0.0
        return self.steals_succeeded / self.steal_attempts

    def achieved_bandwidth_gbps(self, device: DeviceConfig, element_bytes: int = 4) -> float:
        """Effective DRAM bandwidth over the run (useful bytes only)."""
        if self.total_cycles <= 0:
            return 0.0
        seconds = device.cycles_to_ms(self.total_cycles) * 1e-3
        return self.traffic_elements * element_bytes / seconds / 1e9

    def as_row(self) -> dict[str, object]:
        return {
            "kernels": self.kernels_launched,
            "total_cycles": round(self.total_cycles, 1),
            "launch_%": round(100 * self.launch_overhead_fraction, 1),
            "bw_bound": self.bandwidth_bound_kernels,
            "simd_eff": round(self.mean_simd_efficiency, 3),
            "work_items": self.work_items,
            "steals": self.steals_succeeded,
        }

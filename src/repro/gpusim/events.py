"""Minimal discrete-event engine for persistent-kernel simulation.

Grid dispatch (``scheduler.dispatch``) is a one-shot schedule, but the
work-stealing runtime needs genuine time interleaving: a worker's next
action (pop own deque, steal, go idle) depends on the *global* state at
the moment it becomes free. :class:`EventSimulator` provides the usual
time-ordered callback queue with deterministic tie-breaking (insertion
order at equal timestamps), which the load-balancing runtimes build on.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from itertools import count

__all__ = ["EventSimulator"]


class EventSimulator:
    """A time-ordered event loop.

    Events are ``(time, callback)``; callbacks may schedule further
    events. Ties in time resolve in scheduling order, so runs are fully
    deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (cycles)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to fire at absolute ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past ({time} < now {self._now})"
            )
        heapq.heappush(self._heap, (float(time), next(self._seq), action))

    def schedule_after(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self._now + delay, action)

    def run(self, *, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the queue; returns the final simulation time.

        ``until`` stops the clock at a horizon (remaining events stay
        queued); ``max_events`` guards against runaway simulations.
        """
        while self._heap:
            if max_events is not None and self._processed >= max_events:
                break
            time, _, action = self._heap[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = time
            self._processed += 1
            action()
        return self._now

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._heap)

"""Occupancy calculator — how many wavefronts a CU can keep resident.

GPU latency hiding depends on *occupancy*: the number of wavefronts a
compute unit can hold concurrently, limited by whichever resource a
workgroup exhausts first — vector registers, local data share (LDS), or
the hardware wave-slot/workgroup caps. This calculator mirrors the GCN
rules for the paper's Tahiti chip and reports the limiting resource, the
classic tuning question behind workgroup-size choices (experiment E9).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceConfig

__all__ = ["OccupancyLimits", "OccupancyReport", "occupancy"]


@dataclass(frozen=True)
class OccupancyLimits:
    """Per-CU resource budgets (defaults = GCN 1.0 / Tahiti).

    ``vgprs_per_simd`` counts register *file entries per lane slot*
    (256 VGPRs addressable per lane, 64 KB file per SIMD); LDS is shared
    by the whole CU.
    """

    max_waves_per_simd: int = 10
    vgprs_per_simd: int = 256  # addressable VGPRs per lane; file = 256 × 64 lanes
    lds_per_cu_bytes: int = 65536
    max_workgroups_per_cu: int = 16

    def __post_init__(self) -> None:
        if min(
            self.max_waves_per_simd,
            self.vgprs_per_simd,
            self.lds_per_cu_bytes,
            self.max_workgroups_per_cu,
        ) <= 0:
            raise ValueError("all limits must be positive")


@dataclass(frozen=True)
class OccupancyReport:
    """Occupancy outcome for one kernel configuration."""

    waves_per_cu: int
    workgroups_per_cu: int
    occupancy: float  # waves / (simd_per_cu * max_waves_per_simd)
    limiter: str  # "vgpr" | "lds" | "wave_slots" | "workgroup_slots"

    def as_row(self) -> dict[str, object]:
        return {
            "waves_per_cu": self.waves_per_cu,
            "wg_per_cu": self.workgroups_per_cu,
            "occupancy": round(self.occupancy, 3),
            "limiter": self.limiter,
        }


def occupancy(
    device: DeviceConfig,
    *,
    workgroup_size: int = 256,
    vgprs_per_lane: int = 32,
    lds_per_workgroup: int = 0,
    limits: OccupancyLimits | None = None,
) -> OccupancyReport:
    """Resident waves per CU for a kernel configuration.

    Applies each resource cap in turn (wave slots, registers, LDS,
    workgroup slots) and reports the binding one. ``vgprs_per_lane = 0``
    is rejected — every kernel uses registers.
    """
    limits = limits or OccupancyLimits()
    if workgroup_size <= 0 or workgroup_size % device.wavefront_size:
        raise ValueError("workgroup_size must be a positive wavefront multiple")
    if workgroup_size > device.max_workgroup_size:
        raise ValueError("workgroup_size exceeds the device maximum")
    if vgprs_per_lane <= 0:
        raise ValueError("vgprs_per_lane must be positive")
    if vgprs_per_lane > limits.vgprs_per_simd:
        raise ValueError("kernel needs more registers than the file holds")
    if lds_per_workgroup < 0 or lds_per_workgroup > limits.lds_per_cu_bytes:
        raise ValueError("lds_per_workgroup out of range")

    waves_per_group = workgroup_size // device.wavefront_size
    hard_wave_cap = device.simd_per_cu * limits.max_waves_per_simd

    # candidate caps expressed in workgroups per CU
    caps: dict[str, int] = {}
    caps["wave_slots"] = hard_wave_cap // waves_per_group
    caps["vgpr"] = (
        (limits.vgprs_per_simd // vgprs_per_lane) * device.simd_per_cu
    ) // waves_per_group
    caps["workgroup_slots"] = limits.max_workgroups_per_cu
    if lds_per_workgroup > 0:
        caps["lds"] = limits.lds_per_cu_bytes // lds_per_workgroup

    limiter = min(caps, key=lambda k: (caps[k], k))
    groups = max(caps[limiter], 0)
    waves = min(groups * waves_per_group, hard_wave_cap)
    return OccupancyReport(
        waves_per_cu=waves,
        workgroups_per_cu=groups,
        occupancy=waves / hard_wave_cap,
        limiter=limiter if groups > 0 else limiter,
    )

"""Hardware-style dispatch — two-level greedy scheduling.

Real GCN hardware dispatches *workgroups* to compute units as CUs free
up, in launch order; within a CU, the workgroup's wavefronts spread over
the CU's SIMD pipes. That two-level structure is the model here:

1. per-item costs → lockstep wavefront costs (``max`` over lanes);
2. consecutive wavefronts form a workgroup; the workgroup's cost is the
   makespan of packing its wavefronts greedily (in order) onto
   ``simd_per_cu`` pipes — when a 256-thread workgroup has exactly 4
   wavefronts on a 4-SIMD CU this is just their max;
3. workgroup costs are greedily list-scheduled onto the CUs.

Greedy dispatch load-balances at *workgroup* granularity — it cannot fix
intra-wavefront divergence (a single monster lane still stalls its 63
siblings, which is what the hybrid mapping attacks), and it still leaves
an idle tail when late workgroups are heavy (which is what work stealing
at finer chunk granularity attacks).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

import numpy as np

from .device import DeviceConfig
from .kernel import KernelResult, KernelSpec
from .memory import MemoryModel
from .trace import Timeline
from .wavefront import divergence_stats, wavefront_costs

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = [
    "greedy_schedule",
    "workgroup_costs",
    "dispatch",
    "dispatch_tasks",
    "dispatch_sequence",
]


# Equal-cost runs shorter than this are cheaper to step through the
# Python heap than to set up a numpy candidate ladder for.
_RUN_MIN = 16


def greedy_schedule(
    task_cycles: np.ndarray,
    num_pipes: int,
    *,
    timeline: Timeline | None = None,
    tag: str = "",
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy earliest-available list scheduling, in task order.

    Returns ``(assignment, pipe_busy)`` where ``assignment[i]`` is the
    pipe task ``i`` ran on and ``pipe_busy[p]`` the total busy cycles of
    pipe ``p``. Makespan is ``pipe_busy.max()`` because greedy dispatch
    leaves no holes (each pipe runs its tasks back-to-back).

    The schedule is computed by a batched implementation that exploits
    input structure (single pipe, short task lists, equal-cost runs —
    the common case for workgroup costs, which come from integer cycle
    counts and are frequently tied).  It is bit-identical to the
    reference per-task heap loop (:func:`_greedy_schedule_reference`),
    including ``(time, pipe)`` tie-breaking and float accumulation
    order.  ``timeline`` recording is a post-pass over the computed
    start/end arrays rather than a per-task callback.
    """
    costs = np.asarray(task_cycles, dtype=np.float64).ravel()
    if num_pipes <= 0:
        raise ValueError("num_pipes must be positive")
    n = costs.size
    if n:
        if not np.all(np.isfinite(costs)):
            raise ValueError(
                "task costs must be finite (NaN/inf would silently corrupt "
                "the scheduler's heap ordering)"
            )
        if costs.min() < 0:
            raise ValueError("task costs must be non-negative")
    assignment = np.empty(n, dtype=np.int64)
    busy = np.zeros(num_pipes, dtype=np.float64)
    if n:
        starts = np.empty(n, dtype=np.float64)
        _schedule_into(costs, num_pipes, assignment, starts)
        np.add.at(busy, assignment, costs)
        if timeline is not None:
            timeline.record_batch(
                assignment,
                starts,
                starts + costs,
                tag if tag else [f"t{i}" for i in range(n)],
            )
    return assignment, busy


def _greedy_schedule_reference(
    task_cycles: np.ndarray,
    num_pipes: int,
    *,
    timeline: Timeline | None = None,
    tag: str = "",
) -> tuple[np.ndarray, np.ndarray]:
    """Reference per-task heap loop (the original implementation).

    Kept as the equivalence oracle for the vectorized scheduler: the
    property tests assert :func:`greedy_schedule` matches this exactly
    (assignments, busy arrays, and recorded timelines).
    """
    costs = np.asarray(task_cycles, dtype=np.float64).ravel()
    if num_pipes <= 0:
        raise ValueError("num_pipes must be positive")
    if costs.size and costs.min() < 0:
        raise ValueError("task costs must be non-negative")
    assignment = np.empty(costs.size, dtype=np.int64)
    busy = np.zeros(num_pipes, dtype=np.float64)
    # (available_time, pipe) heap; pipe index tie-breaks deterministically.
    heap: list[tuple[float, int]] = [(0.0, p) for p in range(num_pipes)]
    heapq.heapify(heap)
    for i, cost in enumerate(costs):
        start, pipe = heapq.heappop(heap)
        end = start + cost
        assignment[i] = pipe
        busy[pipe] += cost
        if timeline is not None:
            timeline.record(pipe, start, end, tag or f"t{i}")
        heapq.heappush(heap, (end, pipe))
    return assignment, busy


def _schedule_scalar(
    costs: np.ndarray,
    num_pipes: int,
    assignment: np.ndarray,
    starts: np.ndarray,
) -> None:
    """Optimized scalar fallback: one heap loop over plain Python floats."""
    clist = costs.tolist()
    n = len(clist)
    heap: list[tuple[float, int]] = [(0.0, p) for p in range(num_pipes)]
    pop, push = heapq.heappop, heapq.heappush
    out_p = [0] * n
    out_s = [0.0] * n
    for i in range(n):
        t, p = pop(heap)
        out_p[i] = p
        out_s[i] = t
        push(heap, (t + clist[i], p))
    assignment[:] = out_p
    starts[:] = out_s


def _schedule_into(
    costs: np.ndarray,
    num_pipes: int,
    assignment: np.ndarray,
    starts: np.ndarray,
) -> None:
    """Fill ``assignment``/``starts`` exactly as the reference heap would.

    Strategy, in order of preference:

    - single pipe → prefix-sum of costs;
    - no more tasks than pipes (all costs positive) → task ``i`` on pipe
      ``i`` at time 0;
    - all costs equal and positive → round-robin with one shared
      start-time ladder (sequential ``np.add.accumulate`` reproduces the
      heap's float accumulation bit-for-bit);
    - otherwise decompose into equal-cost runs: long runs merge the
      pipes' arithmetic start-time progressions with a stable argsort
      (ties resolve to the lowest pipe, matching the heap's
      ``(time, pipe)`` order); short runs step a conventional heap, in
      contiguous segments so mostly-distinct inputs pay one optimized
      scalar pass instead of per-run setup.
    """
    n = costs.size
    P = num_pipes
    if P == 1:
        assignment[:] = 0
        starts[0] = 0.0
        if n > 1:
            np.add.accumulate(costs[:-1], out=starts[1:])
        return
    if n <= P:
        # With positive costs the first n pops are the n distinct idle
        # pipes.  Zero costs re-expose a popped pipe at the same lexical
        # rank, so they fall through to the general path.
        if costs.min() > 0.0:
            assignment[:] = np.arange(n)
            starts[:] = 0.0
            return
    else:
        c0 = costs[0]
        if c0 > 0.0 and not np.any(costs != c0):
            idx = np.arange(n, dtype=np.int64)
            assignment[:] = idx % P
            rounds = -(-n // P)
            ladder = np.full(rounds, c0, dtype=np.float64)
            ladder[0] = 0.0
            np.add.accumulate(ladder, out=ladder)
            starts[:] = ladder[idx // P]
            return
    bounds = np.flatnonzero(np.diff(costs) != 0) + 1
    num_runs = bounds.size + 1
    if num_runs * _RUN_MIN > n:
        # Mean run length below the vectorization threshold: the run
        # machinery would mostly hit its scalar branch anyway.
        _schedule_scalar(costs, P, assignment, starts)
        return
    run_starts = np.concatenate(([0], bounds)).tolist()
    run_ends = np.concatenate((bounds, [n])).tolist()
    pop, push = heapq.heappop, heapq.heappush
    avail = np.zeros(P, dtype=np.float64)
    heap: list[tuple[float, int]] | None = None
    clist: list[float] | None = None
    i = 0
    while i < num_runs:
        rs = run_starts[i]
        re = run_ends[i]
        if re - rs < _RUN_MIN:
            # Merge the contiguous stretch of short runs into one
            # scalar heap segment.
            j = i + 1
            while j < num_runs and run_ends[j] - run_starts[j] < _RUN_MIN:
                j += 1
            seg_end = run_ends[j - 1]
            if heap is None:
                heap = list(zip(avail.tolist(), range(P), strict=True))
                heapq.heapify(heap)
            if clist is None:
                clist = costs.tolist()
            out_p = [0] * (seg_end - rs)
            out_s = [0.0] * (seg_end - rs)
            k = 0
            for idx in range(rs, seg_end):
                t, p = pop(heap)
                out_p[k] = p
                out_s[k] = t
                k += 1
                push(heap, (t + clist[idx], p))
            assignment[rs:seg_end] = out_p
            starts[rs:seg_end] = out_s
            i = j
            continue
        if heap is not None:
            for t, p in heap:
                avail[p] = t
            heap = None
        R = re - rs
        c = float(costs[rs])
        if c == 0.0:
            # Zero-cost tasks re-insert (t, p) unchanged, so the heap
            # pops the same lexically-minimal pipe for the whole run.
            p0 = int(np.argmin(avail))
            assignment[rs:re] = p0
            starts[rs:re] = avail[p0]
            i += 1
            continue
        amax = float(avail.max())
        amin = float(avail.min())
        # Candidate-count bound: slots available by time amax, plus the
        # full rounds needed to cover any remainder of the run.  A pipe
        # can take at most R tasks from this run, so R + 1 rungs per
        # ladder always suffice — that cap keeps the ladder bounded when
        # c is tiny relative to the avail spread (the uncapped bound is
        # ~(amax - amin)/c, which overflows for epsilon-sized costs).
        cap = R + 1
        with np.errstate(over="ignore"):
            # denormal c overflows the quotients to inf — which reads
            # correctly as "more slots than the run could ever need"
            c1 = np.floor((amax - avail) / c).sum() + P
            extra = 0 if c1 >= R else -((int(c1) - R) // P)
            kmaxf = np.floor((amax + extra * c - amin) / c) + 2
        kmax = int(kmaxf) if kmaxf < cap else cap
        while True:
            # Row p holds the exact sequential start times avail[p],
            # avail[p]+c, ... — np.add.accumulate is a left fold, so the
            # floats match repeated ``start + cost`` exactly.
            mat = np.full((P, kmax + 1), c, dtype=np.float64)
            mat[:, 0] = avail
            np.add.accumulate(mat, axis=1, out=mat)
            cand = mat[:, :-1].ravel()
            order = np.argsort(cand, kind="stable")[:R]
            sel_p = order // kmax
            counts = np.bincount(sel_p, minlength=P)
            if counts.max() < kmax:
                # Every pipe kept at least one unselected candidate, so
                # the selection threshold lies inside every ladder and
                # the R smallest candidates are exact.
                break
            # counts.max() <= R < cap, so the loop terminates at cap.
            kmax = min(kmax * 2, cap)
        assignment[rs:re] = sel_p
        starts[rs:re] = cand[order]
        avail = mat[np.arange(P), counts]
        i += 1


def workgroup_costs(
    wavefront_cycles: np.ndarray, wf_per_group: int, simd_per_cu: int
) -> np.ndarray:
    """Cost of each workgroup: its wavefronts packed onto the CU's pipes.

    Consecutive groups of ``wf_per_group`` wavefronts form a workgroup.
    With ``wf_per_group <= simd_per_cu`` every wavefront has its own
    pipe, so the group costs its slowest wavefront. Larger groups pack
    greedily in order (vectorized across groups, looping only over the
    within-group position).
    """
    if wf_per_group <= 0 or simd_per_cu <= 0:
        raise ValueError("group and pipe counts must be positive")
    wf = np.asarray(wavefront_cycles, dtype=np.float64).ravel()
    if wf.size == 0:
        return np.empty(0, dtype=np.float64)
    num_groups = -(-wf.size // wf_per_group)
    padded = np.zeros(num_groups * wf_per_group, dtype=np.float64)
    padded[: wf.size] = wf
    grid = padded.reshape(num_groups, wf_per_group)
    if wf_per_group <= simd_per_cu:
        return grid.max(axis=1)
    pipes = np.zeros((num_groups, simd_per_cu), dtype=np.float64)
    for col in range(wf_per_group):
        idx = np.argmin(pipes, axis=1)
        pipes[np.arange(num_groups), idx] += grid[:, col]
    return pipes.max(axis=1)


def dispatch(
    spec: KernelSpec,
    device: DeviceConfig,
    memory: MemoryModel | None = None,
    *,
    timeline: Timeline | None = None,
    tracer: "Tracer | None" = None,
) -> KernelResult:
    """Simulate one thread-mapped kernel launch on ``device``.

    Pipeline: per-item costs → lockstep wavefront costs → workgroup
    costs → greedy workgroup dispatch onto the CUs → makespan, compared
    against the DRAM roofline, plus the fixed launch overhead.
    """
    if spec.workgroup_size % device.wavefront_size:
        raise ValueError(
            f"workgroup_size {spec.workgroup_size} must be a multiple of "
            f"wavefront_size {device.wavefront_size}"
        )
    wf = wavefront_costs(spec.item_cycles, device.wavefront_size)
    wf_per_group = spec.workgroup_size // device.wavefront_size
    wg = workgroup_costs(wf, wf_per_group, device.simd_per_cu)
    return _finish(
        spec.name,
        wg,
        device,
        memory,
        spec.traffic_elements,
        divergence_stats(spec.item_cycles, device.wavefront_size),
        timeline,
        tracer,
    )


def dispatch_tasks(
    name: str,
    task_cycles: np.ndarray,
    device: DeviceConfig,
    memory: MemoryModel | None = None,
    *,
    tasks_per_group: int | None = None,
    traffic_elements: float = 0.0,
    divergence: "divergence_stats | None" = None,
    timeline: Timeline | None = None,
    tracer: "Tracer | None" = None,
) -> KernelResult:
    """Dispatch pre-aggregated *wavefront tasks* (cooperative kernels).

    ``task_cycles[i]`` is the cost of one whole-wavefront task (e.g. one
    high-degree vertex processed cooperatively). Tasks group into
    workgroups of ``tasks_per_group`` (default: one per SIMD pipe) and
    dispatch exactly like :func:`dispatch`. Lane-level divergence stats
    are not derivable from task costs; pass ``divergence`` if the caller
    has them.
    """
    tasks = np.asarray(task_cycles, dtype=np.float64).ravel()
    group = tasks_per_group or device.simd_per_cu
    wg = workgroup_costs(tasks, group, device.simd_per_cu)
    return _finish(
        name, wg, device, memory, traffic_elements, divergence, timeline, tracer
    )


def _finish(
    name: str,
    wg_cycles: np.ndarray,
    device: DeviceConfig,
    memory: MemoryModel | None,
    traffic_elements: float,
    divergence,
    timeline: Timeline | None,
    tracer: "Tracer | None" = None,
) -> KernelResult:
    memory = memory or MemoryModel(device)
    _, busy = greedy_schedule(wg_cycles, device.num_cus, timeline=timeline, tag=name)
    compute = float(busy.max()) if busy.size else 0.0
    bandwidth = (
        memory.bandwidth_floor_cycles(traffic_elements) if traffic_elements else 0.0
    )
    if tracer is not None:
        # one wavefront-scheduling summary per dispatch: how the greedy
        # workgroup placement occupied the CUs for this launch.
        util = (
            float(busy.sum() / (device.num_cus * compute)) if compute > 0 else 1.0
        )
        tracer.sim_instant(
            f"{name}:dispatch",
            cat="sched",
            at=0.0,
            workgroups=int(wg_cycles.size),
            cus=device.num_cus,
            cu_utilization=util,
            compute_cycles=compute,
            bandwidth_cycles=bandwidth,
            bandwidth_bound=bandwidth > compute,
        )
    return KernelResult(
        name=name,
        device=device,
        compute_cycles=compute,
        bandwidth_cycles=bandwidth,
        launch_cycles=device.launch_cycles,
        workgroup_cycles=wg_cycles,
        cu_busy=busy,
        divergence=divergence,
    )


def dispatch_sequence(
    specs: list[KernelSpec],
    device: DeviceConfig,
    memory: MemoryModel | None = None,
) -> tuple[float, list[KernelResult]]:
    """Run dependent kernels back-to-back (one iteration's launches).

    Returns ``(total_cycles, results)``; the kernels serialize, each
    paying its own launch overhead — exactly the per-iteration cost
    structure of the iterative coloring algorithms.
    """
    results = [dispatch(s, device, memory) for s in specs]
    return sum(r.total_cycles for r in results), results

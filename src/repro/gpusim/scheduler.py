"""Hardware-style dispatch — two-level greedy scheduling.

Real GCN hardware dispatches *workgroups* to compute units as CUs free
up, in launch order; within a CU, the workgroup's wavefronts spread over
the CU's SIMD pipes. That two-level structure is the model here:

1. per-item costs → lockstep wavefront costs (``max`` over lanes);
2. consecutive wavefronts form a workgroup; the workgroup's cost is the
   makespan of packing its wavefronts greedily (in order) onto
   ``simd_per_cu`` pipes — when a 256-thread workgroup has exactly 4
   wavefronts on a 4-SIMD CU this is just their max;
3. workgroup costs are greedily list-scheduled onto the CUs.

Greedy dispatch load-balances at *workgroup* granularity — it cannot fix
intra-wavefront divergence (a single monster lane still stalls its 63
siblings, which is what the hybrid mapping attacks), and it still leaves
an idle tail when late workgroups are heavy (which is what work stealing
at finer chunk granularity attacks).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

import numpy as np

from .device import DeviceConfig
from .kernel import KernelResult, KernelSpec
from .memory import MemoryModel
from .trace import Timeline
from .wavefront import divergence_stats, wavefront_costs

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = [
    "greedy_schedule",
    "workgroup_costs",
    "dispatch",
    "dispatch_tasks",
    "dispatch_sequence",
]


def greedy_schedule(
    task_cycles: np.ndarray,
    num_pipes: int,
    *,
    timeline: Timeline | None = None,
    tag: str = "",
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy earliest-available list scheduling, in task order.

    Returns ``(assignment, pipe_busy)`` where ``assignment[i]`` is the
    pipe task ``i`` ran on and ``pipe_busy[p]`` the total busy cycles of
    pipe ``p``. Makespan is ``pipe_busy.max()`` because greedy dispatch
    leaves no holes (each pipe runs its tasks back-to-back).
    """
    costs = np.asarray(task_cycles, dtype=np.float64).ravel()
    if num_pipes <= 0:
        raise ValueError("num_pipes must be positive")
    if costs.size and costs.min() < 0:
        raise ValueError("task costs must be non-negative")
    assignment = np.empty(costs.size, dtype=np.int64)
    busy = np.zeros(num_pipes, dtype=np.float64)
    # (available_time, pipe) heap; pipe index tie-breaks deterministically.
    heap: list[tuple[float, int]] = [(0.0, p) for p in range(num_pipes)]
    heapq.heapify(heap)
    for i, cost in enumerate(costs):
        start, pipe = heapq.heappop(heap)
        end = start + cost
        assignment[i] = pipe
        busy[pipe] += cost
        if timeline is not None:
            timeline.record(pipe, start, end, tag or f"t{i}")
        heapq.heappush(heap, (end, pipe))
    return assignment, busy


def workgroup_costs(
    wavefront_cycles: np.ndarray, wf_per_group: int, simd_per_cu: int
) -> np.ndarray:
    """Cost of each workgroup: its wavefronts packed onto the CU's pipes.

    Consecutive groups of ``wf_per_group`` wavefronts form a workgroup.
    With ``wf_per_group <= simd_per_cu`` every wavefront has its own
    pipe, so the group costs its slowest wavefront. Larger groups pack
    greedily in order (vectorized across groups, looping only over the
    within-group position).
    """
    if wf_per_group <= 0 or simd_per_cu <= 0:
        raise ValueError("group and pipe counts must be positive")
    wf = np.asarray(wavefront_cycles, dtype=np.float64).ravel()
    if wf.size == 0:
        return np.empty(0, dtype=np.float64)
    num_groups = -(-wf.size // wf_per_group)
    padded = np.zeros(num_groups * wf_per_group, dtype=np.float64)
    padded[: wf.size] = wf
    grid = padded.reshape(num_groups, wf_per_group)
    if wf_per_group <= simd_per_cu:
        return grid.max(axis=1)
    pipes = np.zeros((num_groups, simd_per_cu), dtype=np.float64)
    for col in range(wf_per_group):
        idx = np.argmin(pipes, axis=1)
        pipes[np.arange(num_groups), idx] += grid[:, col]
    return pipes.max(axis=1)


def dispatch(
    spec: KernelSpec,
    device: DeviceConfig,
    memory: MemoryModel | None = None,
    *,
    timeline: Timeline | None = None,
    tracer: "Tracer | None" = None,
) -> KernelResult:
    """Simulate one thread-mapped kernel launch on ``device``.

    Pipeline: per-item costs → lockstep wavefront costs → workgroup
    costs → greedy workgroup dispatch onto the CUs → makespan, compared
    against the DRAM roofline, plus the fixed launch overhead.
    """
    if spec.workgroup_size % device.wavefront_size:
        raise ValueError(
            f"workgroup_size {spec.workgroup_size} must be a multiple of "
            f"wavefront_size {device.wavefront_size}"
        )
    wf = wavefront_costs(spec.item_cycles, device.wavefront_size)
    wf_per_group = spec.workgroup_size // device.wavefront_size
    wg = workgroup_costs(wf, wf_per_group, device.simd_per_cu)
    return _finish(
        spec.name,
        wg,
        device,
        memory,
        spec.traffic_elements,
        divergence_stats(spec.item_cycles, device.wavefront_size),
        timeline,
        tracer,
    )


def dispatch_tasks(
    name: str,
    task_cycles: np.ndarray,
    device: DeviceConfig,
    memory: MemoryModel | None = None,
    *,
    tasks_per_group: int | None = None,
    traffic_elements: float = 0.0,
    divergence: "divergence_stats | None" = None,
    timeline: Timeline | None = None,
    tracer: "Tracer | None" = None,
) -> KernelResult:
    """Dispatch pre-aggregated *wavefront tasks* (cooperative kernels).

    ``task_cycles[i]`` is the cost of one whole-wavefront task (e.g. one
    high-degree vertex processed cooperatively). Tasks group into
    workgroups of ``tasks_per_group`` (default: one per SIMD pipe) and
    dispatch exactly like :func:`dispatch`. Lane-level divergence stats
    are not derivable from task costs; pass ``divergence`` if the caller
    has them.
    """
    tasks = np.asarray(task_cycles, dtype=np.float64).ravel()
    group = tasks_per_group or device.simd_per_cu
    wg = workgroup_costs(tasks, group, device.simd_per_cu)
    return _finish(
        name, wg, device, memory, traffic_elements, divergence, timeline, tracer
    )


def _finish(
    name: str,
    wg_cycles: np.ndarray,
    device: DeviceConfig,
    memory: MemoryModel | None,
    traffic_elements: float,
    divergence,
    timeline: Timeline | None,
    tracer: "Tracer | None" = None,
) -> KernelResult:
    memory = memory or MemoryModel(device)
    _, busy = greedy_schedule(wg_cycles, device.num_cus, timeline=timeline, tag=name)
    compute = float(busy.max()) if busy.size else 0.0
    bandwidth = (
        memory.bandwidth_floor_cycles(traffic_elements) if traffic_elements else 0.0
    )
    if tracer is not None:
        # one wavefront-scheduling summary per dispatch: how the greedy
        # workgroup placement occupied the CUs for this launch.
        util = (
            float(busy.sum() / (device.num_cus * compute)) if compute > 0 else 1.0
        )
        tracer.sim_instant(
            f"{name}:dispatch",
            cat="sched",
            at=0.0,
            workgroups=int(wg_cycles.size),
            cus=device.num_cus,
            cu_utilization=util,
            compute_cycles=compute,
            bandwidth_cycles=bandwidth,
            bandwidth_bound=bandwidth > compute,
        )
    return KernelResult(
        name=name,
        device=device,
        compute_cycles=compute,
        bandwidth_cycles=bandwidth,
        launch_cycles=device.launch_cycles,
        workgroup_cycles=wg_cycles,
        cu_busy=busy,
        divergence=divergence,
    )


def dispatch_sequence(
    specs: list[KernelSpec],
    device: DeviceConfig,
    memory: MemoryModel | None = None,
) -> tuple[float, list[KernelResult]]:
    """Run dependent kernels back-to-back (one iteration's launches).

    Returns ``(total_cycles, results)``; the kernels serialize, each
    paying its own launch overhead — exactly the per-iteration cost
    structure of the iterative coloring algorithms.
    """
    results = [dispatch(s, device, memory) for s in specs]
    return sum(r.total_cycles for r in results), results

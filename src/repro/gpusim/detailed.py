"""Detailed CU model — event-driven wavefront interleaving.

The main dispatcher (:mod:`repro.gpusim.scheduler`) uses a first-order
cost law (lockstep max + greedy dispatch). This module implements a
*finer* model to validate it against: each wavefront alternates compute
quanta and memory requests; a SIMD keeps several wavefronts resident
and issues whichever is ready (round-robin), so memory latency is
hidden exactly to the extent residency allows — no latency-hiding
*assumption*, hiding *emerges* from the interleaving.

It is ~1000× slower than the first-order model, so it's used for
cross-checks (experiment E15: do the two models rank configurations the
same way?) rather than inside the algorithm loops.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from .device import DeviceConfig

__all__ = [
    "DetailedParams",
    "DetailedResult",
    "simulate_cu_detailed",
    "detailed_dispatch",
    "thread_kernel_decomposition",
]


def thread_kernel_decomposition(cost_model, degrees) -> tuple[np.ndarray, np.ndarray]:
    """Split a thread-mapped kernel into (issue cycles, memory accesses).

    The first-order :class:`~repro.coloring.kernels.CostModel` folds
    memory stalls into per-element charges; the detailed model wants
    them separate — pure issue work (ALU + access *issue*) per item plus
    the access count whose latency the interleaving will (or won't)
    hide.
    """
    d = np.asarray(degrees, dtype=np.float64)
    accesses = cost_model.fixed_reads + cost_model.reads_per_neighbor * d
    issue = (
        cost_model.fixed_alu * cost_model.device.alu_cycles
        + cost_model.alu_per_neighbor * cost_model.device.alu_cycles * d
        + cost_model.device.coalesced_access_cycles * accesses
    )
    return issue, accesses


@dataclass(frozen=True)
class DetailedParams:
    """Timing constants of the detailed model."""

    mem_latency_cycles: float = 350.0
    #: resident wavefronts per SIMD (the occupancy actually achieved)
    resident_waves_per_simd: int = 8
    #: memory-level parallelism: independent outstanding loads per wave;
    #: a wave's effective stall per access is ``latency / mlp``
    mlp: float = 8.0

    def __post_init__(self) -> None:
        if self.mem_latency_cycles < 0:
            raise ValueError("mem_latency_cycles must be non-negative")
        if self.resident_waves_per_simd < 1:
            raise ValueError("resident_waves_per_simd must be >= 1")
        if self.mlp < 1:
            raise ValueError("mlp must be >= 1")

    @property
    def effective_latency(self) -> float:
        return self.mem_latency_cycles / self.mlp


@dataclass(frozen=True)
class DetailedResult:
    """Outcome of a detailed simulation."""

    cycles: float
    issue_busy_cycles: float  # cycles the SIMDs spent issuing compute
    stall_cycles: float  # cycles all resident waves were waiting on memory
    pipes: int = 1  # pipes the busy/stall totals are summed over

    @property
    def issue_utilization(self) -> float:
        if self.cycles <= 0:
            return 1.0
        return self.issue_busy_cycles / (self.cycles * self.pipes)


def simulate_cu_detailed(
    wave_compute: np.ndarray,
    wave_accesses: np.ndarray,
    params: DetailedParams,
) -> DetailedResult:
    """Simulate one SIMD pipe running a queue of wavefronts.

    ``wave_compute[i]`` is wavefront *i*'s total compute (issue) cycles;
    ``wave_accesses[i]`` its number of memory round-trips. Each wave
    alternates ``compute/(accesses+1)`` quanta with memory requests of
    ``mem_latency_cycles``; up to ``resident_waves_per_simd`` waves are
    resident, and the pipe issues any ready wave (FIFO among ready).
    """
    comp = np.asarray(wave_compute, dtype=np.float64).ravel()
    acc = np.asarray(wave_accesses, dtype=np.int64).ravel()
    if comp.shape != acc.shape:
        raise ValueError("wave arrays must align")
    if comp.size and (comp.min() < 0 or acc.min() < 0):
        raise ValueError("wave costs must be non-negative")
    n = comp.size
    if n == 0:
        return DetailedResult(0.0, 0.0, 0.0)

    if not acc.any():
        # Pure-compute kernel: no wave ever sleeps, so the pipe issues
        # the waves back-to-back in admission order.  The event loop
        # accumulates ``now`` as a sequential left fold, which
        # np.add.accumulate reproduces bit-for-bit (np.sum's pairwise
        # reduction would not).
        total = float(np.add.accumulate(comp)[-1])
        return DetailedResult(cycles=total, issue_busy_cycles=total, stall_cycles=0.0)

    # per-wave: quantum length and remaining phase count
    quanta = comp / (acc + 1)
    phases = 2 * acc + 1  # compute,mem,...,compute

    if params.resident_waves_per_simd == 1:
        return _simulate_solo_resident(quanta, acc, phases, params)

    quanta_l = quanta.tolist()
    phases_left = phases.tolist()

    next_to_admit = 0
    ready: deque[int] = deque()  # waves ready to issue (FIFO)
    returns: list[tuple[float, int]] = []  # (time, wave) memory completions
    resident = 0
    now = 0.0
    issue_busy = 0.0
    stall = 0.0
    done = 0
    resident_max = params.resident_waves_per_simd
    latency = params.effective_latency
    heappush, heappop = heapq.heappush, heapq.heappop

    while done < n:
        # admit while there is room
        while resident < resident_max and next_to_admit < n:
            ready.append(next_to_admit)
            next_to_admit += 1
            resident += 1
        if ready:
            w = ready.popleft()
            q = quanta_l[w]
            now += q
            issue_busy += q
            left = phases_left[w] - 1
            # release memory returns that completed during the quantum
            while returns and returns[0][0] <= now:
                _, back = heappop(returns)
                ready.append(back)
            if left == 0:
                phases_left[w] = 0
                resident -= 1
                done += 1
            else:
                # issue the memory request; wave sleeps for the latency
                left -= 1
                phases_left[w] = left
                if left == 0:  # ended on a memory phase
                    resident -= 1
                    done += 1
                else:
                    heappush(returns, (now + latency, w))
            continue
        if returns:
            # every resident wave is waiting on memory: stall to the
            # first completion
            t, back = heappop(returns)
            stall += max(t - now, 0.0)
            now = max(now, t)
            ready.append(back)
            continue
        break  # defensive: nothing ready, nothing returning
    return DetailedResult(cycles=now, issue_busy_cycles=issue_busy, stall_cycles=stall)


def _simulate_solo_resident(
    quanta: np.ndarray,
    acc: np.ndarray,
    phases: np.ndarray,
    params: DetailedParams,
) -> DetailedResult:
    """Closed form for ``resident_waves_per_simd == 1``.

    With a single resident wave nothing overlaps: wave *w* runs
    ``q, L, q, L, ..., q`` (``acc[w]`` full-latency stalls interleaving
    ``acc[w]+1`` quanta), waves strictly in order.  Reproduce the event
    loop's float arithmetic by accumulating the exact per-phase sequence
    with sequential left folds.
    """
    latency = params.effective_latency
    total_phases = int(phases.sum())
    seq = np.repeat(quanta, phases)
    offsets = np.zeros(phases.size, dtype=np.int64)
    np.cumsum(phases[:-1], out=offsets[1:])
    local = np.arange(total_phases) - np.repeat(offsets, phases)
    is_mem = (local % 2) == 1
    seq[is_mem] = latency
    cum = np.add.accumulate(seq)
    cycles = float(cum[-1])
    issue = float(np.add.accumulate(seq[~is_mem])[-1])
    # The loop's stall increment is ``(now + L) - now``, which is not
    # exactly ``L`` in floats; recover it from consecutive cumulative
    # times around each memory phase.
    mem_idx = np.flatnonzero(is_mem)
    if mem_idx.size:
        stall = float(np.add.accumulate(cum[mem_idx] - cum[mem_idx - 1])[-1])
    else:
        stall = 0.0
    return DetailedResult(cycles=cycles, issue_busy_cycles=issue, stall_cycles=stall)


def detailed_dispatch(
    item_compute: np.ndarray,
    item_accesses: np.ndarray,
    device: DeviceConfig,
    params: DetailedParams | None = None,
) -> DetailedResult:
    """Detailed makespan of one kernel on the whole device.

    Items fold into wavefronts by lockstep max (compute) / max
    (accesses); wavefronts split round-robin over all SIMD pipes, each
    pipe simulated in detail; the kernel ends when the slowest pipe
    does.
    """
    params = params or DetailedParams()
    comp = np.asarray(item_compute, dtype=np.float64).ravel()
    acc = np.asarray(item_accesses, dtype=np.float64).ravel()
    if comp.shape != acc.shape:
        raise ValueError("item arrays must align")
    if comp.size == 0:
        return DetailedResult(0.0, 0.0, 0.0)
    from .wavefront import wavefront_costs

    wf_comp = wavefront_costs(comp, device.wavefront_size)
    wf_acc = wavefront_costs(acc, device.wavefront_size).astype(np.int64)

    pipes = device.num_pipes
    used = min(pipes, wf_comp.size)
    total_cycles = 0.0
    busy = 0.0
    stall = 0.0
    for p in range(used):
        res = simulate_cu_detailed(wf_comp[p::pipes], wf_acc[p::pipes], params)
        total_cycles = max(total_cycles, res.cycles)
        busy += res.issue_busy_cycles
        stall += res.stall_cycles
    return DetailedResult(
        cycles=total_cycles, issue_busy_cycles=busy, stall_cycles=stall, pipes=used
    )

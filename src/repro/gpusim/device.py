"""GPU machine model — configuration and cost constants.

The simulator charges time in *cycles* from a small set of first-order
cost constants. The point is not cycle accuracy (the paper's absolute
numbers came from real hardware) but preserving the cost *structure*
that creates load imbalance:

* SIMT lockstep: a wavefront takes as long as its slowest lane.
* CSR traversal cost is linear in degree for a thread-per-vertex lane,
  but ``ceil(degree / wavefront)`` lockstep steps for a cooperative
  wavefront-per-vertex mapping with coalesced reads.
* Uncoalesced lane-private accesses cost several× a coalesced line.
* Kernel launches, atomics, and steal operations all carry fixed
  overheads that the optimization techniques must amortize.

:data:`RADEON_HD_7950` encodes the paper's evaluation machine (Tahiti).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "DeviceConfig",
    "RADEON_HD_7950",
    "RADEON_R9_290X",
    "CPU_8CORE",
    "SMALL_TEST_DEVICE",
    "named_device",
]


@dataclass(frozen=True)
class DeviceConfig:
    """A SIMT device described by its parallelism and cost constants.

    Parameters
    ----------
    name:
        Human-readable device name.
    num_cus:
        Number of compute units.
    simd_per_cu:
        Wavefront pipes per compute unit (GCN has 4 SIMD-16 units; each
        executes one wavefront's instruction per 4 cycles — folded into
        the per-op constants).
    wavefront_size:
        Lanes per wavefront (64 on GCN).
    max_workgroup_size:
        Largest workgroup the device accepts (256 on GCN).
    clock_mhz:
        Engine clock; converts cycles to milliseconds.
    dram_bandwidth_gbps:
        Peak DRAM bandwidth; imposes a roofline floor on kernel time.
    alu_cycles:
        Cycles charged per scalar ALU operation on a lane.
    coalesced_access_cycles:
        Amortized cycles for one lane's element when the whole wavefront
        reads a contiguous cache line (latency mostly hidden by
        multithreading — this is the *issue* cost).
    uncoalesced_access_cycles:
        Amortized cycles for a lane-private scattered element, where each
        lane touches a different line (the thread-per-vertex CSR pattern).
    atomic_cycles:
        Cycles for one global atomic (CAS / fetch-add) including typical
        contention.
    lds_access_cycles:
        Local (shared) memory access cost per element.
    kernel_launch_us:
        Host-side launch + drain overhead per kernel, microseconds. This
        is what the paper's iterative algorithms pay per round and what
        persistent kernels avoid.
    steal_attempt_cycles:
        Cost of one steal attempt (remote deque probe + CAS) in the
        work-stealing runtime.
    reduce_step_cycles:
        Cost per step of a log2(wavefront) intra-wavefront reduction.
    """

    name: str = "generic-gcn"
    num_cus: int = 28
    simd_per_cu: int = 4
    wavefront_size: int = 64
    max_workgroup_size: int = 256
    clock_mhz: float = 925.0
    dram_bandwidth_gbps: float = 240.0

    alu_cycles: float = 1.0
    coalesced_access_cycles: float = 4.0
    uncoalesced_access_cycles: float = 16.0
    atomic_cycles: float = 64.0
    lds_access_cycles: float = 2.0
    kernel_launch_us: float = 8.0
    steal_attempt_cycles: float = 400.0
    reduce_step_cycles: float = 2.0

    def __post_init__(self) -> None:
        if self.num_cus <= 0 or self.simd_per_cu <= 0:
            raise ValueError("num_cus and simd_per_cu must be positive")
        if self.wavefront_size <= 0 or self.wavefront_size & (self.wavefront_size - 1):
            raise ValueError("wavefront_size must be a positive power of two")
        if self.max_workgroup_size % self.wavefront_size:
            raise ValueError("max_workgroup_size must be a multiple of wavefront_size")
        if self.clock_mhz <= 0 or self.dram_bandwidth_gbps <= 0:
            raise ValueError("clock and bandwidth must be positive")

    # ------------------------------------------------------------------

    @property
    def num_pipes(self) -> int:
        """Total concurrent wavefront pipes on the device."""
        return self.num_cus * self.simd_per_cu

    @property
    def cycle_ns(self) -> float:
        """Nanoseconds per cycle."""
        return 1e3 / self.clock_mhz

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count to milliseconds at the engine clock."""
        return float(cycles) * self.cycle_ns * 1e-6

    def ms_to_cycles(self, ms: float) -> float:
        """Convert milliseconds to cycles at the engine clock."""
        return float(ms) * 1e6 / self.cycle_ns

    @property
    def launch_cycles(self) -> float:
        """Kernel launch overhead expressed in cycles."""
        return self.kernel_launch_us * 1e3 / self.cycle_ns

    def bandwidth_cycles(self, total_bytes: float) -> float:
        """Cycles needed to move ``total_bytes`` at peak DRAM bandwidth."""
        seconds = total_bytes / (self.dram_bandwidth_gbps * 1e9)
        return seconds * self.clock_mhz * 1e6

    def with_overrides(self, **kwargs) -> "DeviceConfig":
        """A copy with some fields replaced (for ablations/sweeps)."""
        return replace(self, **kwargs)


#: The paper's evaluation GPU: AMD Radeon HD 7950 ("Tahiti Pro", GCN 1.0).
#: 28 compute units, 64-lane wavefronts, 4 SIMDs/CU, 925 MHz core clock,
#: 240 GB/s GDDR5 — public specifications.
RADEON_HD_7950 = DeviceConfig(
    name="AMD Radeon HD 7950 (Tahiti)",
    num_cus=28,
    simd_per_cu=4,
    wavefront_size=64,
    max_workgroup_size=256,
    clock_mhz=925.0,
    dram_bandwidth_gbps=240.0,
)

#: Its bigger sibling: AMD Radeon R9 290X ("Hawaii", GCN 2), 44 CUs,
#: 1 GHz, 320 GB/s — the follow-on part, for scaling studies.
RADEON_R9_290X = DeviceConfig(
    name="AMD Radeon R9 290X (Hawaii)",
    num_cus=44,
    simd_per_cu=4,
    wavefront_size=64,
    max_workgroup_size=256,
    clock_mhz=1000.0,
    dram_bandwidth_gbps=320.0,
)

#: A multicore-CPU-shaped device for GPU-vs-CPU shape comparisons:
#: 8 "CUs" (cores), one pipe each, 8-lane SIMD (AVX-ish), high clock,
#: modest bandwidth, cheap irregular access (big caches), no kernel
#: launches to speak of, and fast atomics.
CPU_8CORE = DeviceConfig(
    name="generic 8-core CPU (AVX2-ish)",
    num_cus=8,
    simd_per_cu=1,
    wavefront_size=8,
    max_workgroup_size=8,
    clock_mhz=3600.0,
    dram_bandwidth_gbps=50.0,
    alu_cycles=1.0,
    coalesced_access_cycles=2.0,
    uncoalesced_access_cycles=5.0,
    atomic_cycles=20.0,
    lds_access_cycles=1.0,
    kernel_launch_us=0.5,
    steal_attempt_cycles=120.0,
)

#: A deliberately tiny device for unit tests: 2 CUs × 1 pipe, 4-lane
#: wavefronts, so schedules are small enough to check by hand.
SMALL_TEST_DEVICE = DeviceConfig(
    name="small-test-device",
    num_cus=2,
    simd_per_cu=1,
    wavefront_size=4,
    max_workgroup_size=8,
    clock_mhz=1000.0,
    dram_bandwidth_gbps=100.0,
)

_NAMED = {
    "hd7950": RADEON_HD_7950,
    "radeon-hd-7950": RADEON_HD_7950,
    "tahiti": RADEON_HD_7950,
    "r9-290x": RADEON_R9_290X,
    "hawaii": RADEON_R9_290X,
    "cpu8": CPU_8CORE,
    "small": SMALL_TEST_DEVICE,
}


def named_device(name: str) -> DeviceConfig:
    """Look up a preset device by name (case-insensitive)."""
    try:
        return _NAMED[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known: {sorted(_NAMED)}"
        ) from None

"""SIMT GPU timing simulator — the hardware substitution substrate.

Stands in for the paper's AMD Radeon HD 7950: lockstep wavefronts,
greedy workgroup dispatch, a coalescing/bandwidth memory model, and a
discrete-event engine for persistent-kernel runtimes (see DESIGN.md for
why this substitution preserves the paper's load-imbalance phenomena).
"""

from .counters import ExecutionCounters
from .detailed import (
    DetailedParams,
    DetailedResult,
    detailed_dispatch,
    simulate_cu_detailed,
    thread_kernel_decomposition,
)
from .device import (
    CPU_8CORE,
    RADEON_HD_7950,
    RADEON_R9_290X,
    SMALL_TEST_DEVICE,
    DeviceConfig,
    named_device,
)
from .events import EventSimulator
from .kernel import KernelResult, KernelSpec
from .latency import HidingReport, LatencyModel, latency_hiding
from .memory import ELEMENT_BYTES, MemoryModel
from .occupancy import OccupancyLimits, OccupancyReport, occupancy
from .scheduler import (
    dispatch,
    dispatch_sequence,
    dispatch_tasks,
    greedy_schedule,
    workgroup_costs,
)
from .trace import Timeline
from .wavefront import (
    DivergenceStats,
    divergence_stats,
    num_wavefronts,
    simd_efficiency,
    wavefront_costs,
    wavefront_sums,
)

__all__ = [
    "DetailedParams",
    "DetailedResult",
    "detailed_dispatch",
    "simulate_cu_detailed",
    "thread_kernel_decomposition",
    "CPU_8CORE",
    "RADEON_HD_7950",
    "RADEON_R9_290X",
    "SMALL_TEST_DEVICE",
    "DeviceConfig",
    "named_device",
    "EventSimulator",
    "KernelResult",
    "KernelSpec",
    "ExecutionCounters",
    "HidingReport",
    "LatencyModel",
    "latency_hiding",
    "ELEMENT_BYTES",
    "MemoryModel",
    "OccupancyLimits",
    "OccupancyReport",
    "occupancy",
    "dispatch",
    "dispatch_sequence",
    "dispatch_tasks",
    "greedy_schedule",
    "workgroup_costs",
    "Timeline",
    "DivergenceStats",
    "divergence_stats",
    "num_wavefronts",
    "simd_efficiency",
    "wavefront_costs",
    "wavefront_sums",
]

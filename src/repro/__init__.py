"""repro — GPU graph coloring with load-imbalance optimizations.

A production-quality reproduction of *Che, Rodgers, Beckmann, Reinhardt:
"Graph Coloring on the GPU and Some Techniques to Improve Load
Imbalance"* (IPDPSW 2015), built on a deterministic SIMT timing
simulator standing in for the paper's AMD Radeon HD 7950 (see
DESIGN.md).

Quickstart::

    from repro import rmat, maxmin_coloring, baseline_executor

    graph = rmat(12, seed=1)
    result = maxmin_coloring(graph, baseline_executor())
    result.validate(graph)
    print(result.num_colors, result.time_ms)

Public surface (also importable from the subpackages):

* :mod:`repro.graphs` — CSR graphs, generators, I/O, statistics
* :mod:`repro.gpusim` — the SIMT device/timing model
* :mod:`repro.engine` — run context, array backends, cached plans
* :mod:`repro.coloring` — CPU references + simulated GPU algorithms
* :mod:`repro.loadbalance` — partitioning, dynamic fetch, work stealing
* :mod:`repro.harness` — the dataset suite and run helpers
* :mod:`repro.analysis` — tables and experiment records
"""

from .coloring import (
    UNCOLORED,
    ColoringResult,
    ExecutionConfig,
    GPUExecutor,
    InvalidColoringError,
    count_conflicts,
    dsatur,
    greedy_first_fit,
    hybrid_mapping_executor,
    hybrid_switch_coloring,
    is_valid_coloring,
    jones_plassmann_coloring,
    maxmin_coloring,
    num_colors_used,
    smallest_last,
    speculative_coloring,
    validate_coloring,
    welsh_powell,
)
from .engine import (
    ArrayBackend,
    ExecutionPlan,
    PlanCache,
    RunContext,
    make_backend,
    resolve_context,
)
from .gpusim import RADEON_HD_7950, DeviceConfig, MemoryModel, named_device
from .graphs import (
    CSRGraph,
    barabasi_albert,
    delaunay_mesh,
    erdos_renyi,
    grid_2d,
    grid_3d,
    load_graph,
    random_geometric,
    random_regular,
    rmat,
    summarize,
    watts_strogatz,
)
from .harness import baseline_executor, build, make_executor, run_gpu_coloring
from .loadbalance import StealingConfig, simulate_work_stealing
from .metrics import geometric_mean, imbalance_factor, percent_improvement, speedup

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # coloring
    "UNCOLORED",
    "ColoringResult",
    "ExecutionConfig",
    "GPUExecutor",
    "InvalidColoringError",
    "count_conflicts",
    "dsatur",
    "greedy_first_fit",
    "hybrid_mapping_executor",
    "hybrid_switch_coloring",
    "is_valid_coloring",
    "jones_plassmann_coloring",
    "maxmin_coloring",
    "num_colors_used",
    "smallest_last",
    "speculative_coloring",
    "validate_coloring",
    "welsh_powell",
    # graphs
    "CSRGraph",
    "barabasi_albert",
    "delaunay_mesh",
    "erdos_renyi",
    "grid_2d",
    "grid_3d",
    "load_graph",
    "random_geometric",
    "random_regular",
    "rmat",
    "summarize",
    "watts_strogatz",
    # engine
    "ArrayBackend",
    "ExecutionPlan",
    "PlanCache",
    "RunContext",
    "make_backend",
    "resolve_context",
    # gpusim
    "RADEON_HD_7950",
    "DeviceConfig",
    "MemoryModel",
    "named_device",
    # harness
    "baseline_executor",
    "build",
    "make_executor",
    "run_gpu_coloring",
    # loadbalance
    "StealingConfig",
    "simulate_work_stealing",
    # metrics
    "geometric_mean",
    "imbalance_factor",
    "percent_improvement",
    "speedup",
]

"""Recorder — the harness's handle on the run database.

A :class:`Recorder` binds a :class:`~repro.store.db.RunStore` to the
run-level metadata every row shares (git revision, default scale, a
``source`` tag saying which layer produced it) and exposes the three
verbs the harness needs: :meth:`record_run` for a finished coloring,
:meth:`record_experiment` for a reproduction verdict, and
:meth:`record_tuning` for an autotune outcome.

Recorders cross process boundaries as :class:`RecorderSpec` — a plain
picklable description (database path + metadata). Parallel harness
workers rebuild a recorder from the spec and write concurrently into
the same WAL-mode database; the content-keyed upsert keeps the
resulting row set identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from .db import RunStore, config_digest, current_git_rev, graph_digest

if TYPE_CHECKING:
    from ..analysis.experiment import ExperimentRecord
    from ..coloring.base import ColoringResult
    from ..graphs.csr import CSRGraph
    from ..gpusim.counters import ExecutionCounters
    from ..harness.autotune import TuneOutcome

__all__ = ["Recorder", "RecorderSpec", "recorder_from_env"]


@dataclass(frozen=True)
class RecorderSpec:
    """Picklable recipe for rebuilding a :class:`Recorder` in a worker."""

    path: str
    git_rev: str = "unknown"
    scale: str = ""
    source: str = "api"

    def build(self) -> "Recorder":
        return Recorder(
            RunStore(self.path),
            git_rev=self.git_rev,
            scale=self.scale,
            source=self.source,
        )


class Recorder:
    """Writes harness results into a :class:`RunStore` (see module doc)."""

    def __init__(
        self,
        store: RunStore | str,
        *,
        git_rev: str | None = None,
        scale: str = "",
        source: str = "api",
    ) -> None:
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        self.git_rev = git_rev if git_rev is not None else current_git_rev()
        self.scale = scale
        self.source = source

    # -- plumbing -------------------------------------------------------

    @property
    def spec(self) -> RecorderSpec:
        """Spec for rebuilding this recorder in another process."""
        path = str(self.store.path)
        if path == ":memory:":
            raise ValueError("an in-memory store cannot cross processes")
        return RecorderSpec(
            path=path, git_rev=self.git_rev, scale=self.scale, source=self.source
        )

    def with_source(self, source: str) -> "Recorder":
        """Same store and metadata, different ``source`` tag."""
        clone = Recorder.__new__(Recorder)
        clone.store = self.store
        clone.git_rev = self.git_rev
        clone.scale = self.scale
        clone.source = source
        return clone

    def spec_with(self, **changes: Any) -> RecorderSpec:
        return replace(self.spec, **changes)

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- verbs ----------------------------------------------------------

    def record_run(
        self,
        *,
        graph: "CSRGraph",
        result: "ColoringResult",
        seed: int,
        dataset: str = "",
        scale: str | None = None,
        mapping: str = "thread",
        schedule: str = "grid",
        config: Any = None,
        algo_kwargs: dict | None = None,
        counters: "ExecutionCounters | None" = None,
        wall_ms: float | None = None,
    ) -> str:
        """Upsert one finished coloring; returns the graph digest.

        ``config`` should be the *effective* :class:`ExecutionConfig`
        (so different call paths that resolve to the same configuration
        share a digest); a plain kwargs dict is accepted too.
        """
        from .db import canonical_config

        scale = self.scale if scale is None else scale
        gdigest = graph_digest(graph)
        cdigest = config_digest(result.algorithm, config, algo_kwargs)
        simd_eff = launch_fraction = None
        steal_attempts = steals_succeeded = chunks_migrated = 0
        if counters is not None:
            simd_eff = float(counters.mean_simd_efficiency)
            launch_fraction = float(counters.launch_overhead_fraction)
            steal_attempts = int(counters.steal_attempts)
            steals_succeeded = int(counters.steals_succeeded)
            chunks_migrated = int(counters.chunks_migrated)
        self.store.upsert_graph(
            gdigest,
            dataset=dataset,
            scale=scale,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        )
        self.store.upsert_run(
            {
                "graph_digest": gdigest,
                "dataset": dataset,
                "scale": scale,
                "algorithm": result.algorithm,
                "mapping": mapping,
                "schedule": schedule,
                "config": canonical_config(result.algorithm, config, algo_kwargs),
                "config_digest": cdigest,
                "seed": int(seed),
                "git_rev": self.git_rev,
                "num_vertices": int(graph.num_vertices),
                "num_edges": int(graph.num_edges),
                "cycles": float(result.total_cycles),
                "colors": int(result.num_colors),
                "iterations": int(result.num_iterations),
                "time_ms": float(result.time_ms),
                "simd_eff": simd_eff,
                "launch_fraction": launch_fraction,
                "steal_attempts": steal_attempts,
                "steals_succeeded": steals_succeeded,
                "chunks_migrated": chunks_migrated,
                "wall_ms": float(wall_ms) if wall_ms is not None else None,
                "source": self.source,
            }
        )
        return gdigest

    def record_experiment(
        self, record: "ExperimentRecord", *, scale: str | None = None
    ) -> None:
        """Upsert one reproduction verdict (E1–E17-style record)."""
        self.store.upsert_experiment(
            experiment_id=record.experiment_id,
            paper_artifact=record.paper_artifact,
            paper_claim=record.paper_claim,
            measured=record.measured,
            shape_holds=bool(record.shape_holds),
            details=dict(record.details),
            git_rev=self.git_rev,
            scale=self.scale if scale is None else scale,
        )

    def record_tuning(
        self,
        graph: "CSRGraph",
        outcome: "TuneOutcome",
        *,
        seed: int,
        dataset: str = "",
        scale: str | None = None,
    ) -> None:
        """Upsert one autotune outcome (winner + scoreboard)."""
        from dataclasses import asdict

        best = outcome.best
        self.store.upsert_tuning(
            graph_digest=graph_digest(graph),
            dataset=dataset,
            scale=self.scale if scale is None else scale,
            seed=seed,
            git_rev=self.git_rev,
            best_mapping=best.mapping,
            best_schedule=best.schedule,
            best_config=asdict(best),
            best_cycles=float(outcome.best_cycles),
            scoreboard=[
                {"config": asdict(cfg), "probe_cycles": float(cycles)}
                for cfg, cycles in outcome.scoreboard
            ],
        )


def recorder_from_env(
    *,
    default: str | None = None,
    scale: str = "",
    source: str = "api",
) -> Recorder | None:
    """A recorder on the :envvar:`REPRO_RUN_STORE` database, if enabled.

    ``default`` is used when the variable is unset; ``None`` disables
    recording in that case (callers opt in to a default location).
    """
    from .db import store_path_from_env

    if default is None:
        import os

        from .db import ENV_VAR, _DISABLED

        raw = os.environ.get(ENV_VAR)
        if raw is None or raw.strip().lower() in _DISABLED:
            return None
        path = raw
    else:
        resolved = store_path_from_env(default)
        if resolved is None:
            return None
        path = str(resolved)
    return Recorder(RunStore(path), scale=scale, source=source)

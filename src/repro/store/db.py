"""RunStore — the sqlite-backed experiment database.

``benchmarks/results/records.jsonl`` was append-only: no dedup, no
queries, no way to ask "did this PR regress E8?". :class:`RunStore`
replaces it as the source of truth. Every run is keyed by its
*content* — graph digest, effective-configuration digest, seed, git
revision, scale — so re-running a cell upserts (refreshing the
measurement and bumping a dedupe counter) instead of appending a
duplicate line.

Five tables:

* ``runs`` — one row per executed cell: identity key plus the measured
  outcome (cycles, colors, iterations, simulated ms, host wall ms) and
  the load-imbalance metrics (SIMD efficiency, launch-overhead
  fraction, steal counters).
* ``experiments`` — E1–E17-style reproduction verdicts (paper claim,
  measured summary, shape holds?), keyed by (experiment id, git rev,
  scale).
* ``graphs`` — digest → dataset/scale/size, so a digest in ``runs``
  is always resolvable back to a human name.
* ``tunings`` — autotune outcomes (winner + full scoreboard JSON).
* ``jobs`` — the :mod:`repro.serve` job ledger: submitted specs with
  their dedup digest, lifecycle state, progress, and result rows.
  Because the ledger lives in the same database as the runs it
  produces, ``repro serve --recover`` can re-queue every job a crash
  left non-terminal with nothing but the store file.

Concurrency and durability: connections run in WAL mode with a
generous busy timeout, so parallel harness workers
(:func:`repro.harness.parallel.run_batch_parallel`) can record into
one database file concurrently — the content-keyed upsert makes the
resulting row *set* identical to a serial run regardless of write
order. The schema carries a version (``PRAGMA user_version``) and
opening an old file applies the pending :data:`MIGRATIONS` in order.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
import os
import sqlite3
import subprocess
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from ..graphs.csr import CSRGraph

__all__ = [
    "SCHEMA_VERSION",
    "JOB_STATES",
    "TERMINAL_JOB_STATES",
    "MIGRATIONS",
    "RunStore",
    "config_digest",
    "current_git_rev",
    "graph_digest",
    "ingest_jsonl",
    "run_key",
    "store_path_from_env",
]

#: environment knob naming the database file (benches, CLI defaults).
ENV_VAR = "REPRO_RUN_STORE"

#: values of :data:`ENV_VAR` that mean "recording off".
_DISABLED = ("", "0", "off", "none")

#: default database location, mirroring ``records.jsonl``'s home.
DEFAULT_STORE = "benchmarks/results/runs.sqlite"

#: current schema version (``PRAGMA user_version`` of a fresh store).
SCHEMA_VERSION = 3

#: job lifecycle states (see :mod:`repro.serve.model`).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: states a job never leaves on its own; everything else is re-queued
#: by ``repro serve --recover`` after a crash.
TERMINAL_JOB_STATES = frozenset({"done", "failed", "cancelled"})

_V1_SQL = """
CREATE TABLE runs (
    id INTEGER PRIMARY KEY,
    graph_digest TEXT NOT NULL,
    dataset TEXT NOT NULL DEFAULT '',
    scale TEXT NOT NULL DEFAULT '',
    algorithm TEXT NOT NULL,
    mapping TEXT NOT NULL DEFAULT 'thread',
    schedule TEXT NOT NULL DEFAULT 'grid',
    config TEXT NOT NULL DEFAULT '{}',
    config_digest TEXT NOT NULL,
    seed INTEGER NOT NULL DEFAULT 0,
    git_rev TEXT NOT NULL DEFAULT 'unknown',
    num_vertices INTEGER NOT NULL DEFAULT 0,
    num_edges INTEGER NOT NULL DEFAULT 0,
    cycles REAL NOT NULL DEFAULT 0.0,
    colors INTEGER NOT NULL DEFAULT 0,
    iterations INTEGER NOT NULL DEFAULT 0,
    time_ms REAL NOT NULL DEFAULT 0.0,
    simd_eff REAL,
    launch_fraction REAL,
    steal_attempts INTEGER NOT NULL DEFAULT 0,
    steals_succeeded INTEGER NOT NULL DEFAULT 0,
    chunks_migrated INTEGER NOT NULL DEFAULT 0,
    wall_ms REAL,
    source TEXT NOT NULL DEFAULT 'api',
    runs_count INTEGER NOT NULL DEFAULT 1,
    created_at TEXT NOT NULL DEFAULT '',
    UNIQUE (graph_digest, config_digest, seed, git_rev, scale)
);
CREATE INDEX idx_runs_dataset ON runs (dataset, algorithm);
CREATE TABLE experiments (
    id INTEGER PRIMARY KEY,
    experiment_id TEXT NOT NULL,
    paper_artifact TEXT NOT NULL DEFAULT '',
    paper_claim TEXT NOT NULL DEFAULT '',
    measured TEXT NOT NULL DEFAULT '',
    shape_holds INTEGER NOT NULL DEFAULT 0,
    details TEXT NOT NULL DEFAULT '{}',
    git_rev TEXT NOT NULL DEFAULT 'unknown',
    scale TEXT NOT NULL DEFAULT '',
    created_at TEXT NOT NULL DEFAULT '',
    UNIQUE (experiment_id, git_rev, scale)
);
CREATE TABLE graphs (
    digest TEXT PRIMARY KEY,
    dataset TEXT NOT NULL DEFAULT '',
    scale TEXT NOT NULL DEFAULT '',
    num_vertices INTEGER NOT NULL DEFAULT 0,
    num_edges INTEGER NOT NULL DEFAULT 0
);
"""

_V2_SQL = """
CREATE TABLE tunings (
    id INTEGER PRIMARY KEY,
    graph_digest TEXT NOT NULL,
    dataset TEXT NOT NULL DEFAULT '',
    scale TEXT NOT NULL DEFAULT '',
    seed INTEGER NOT NULL DEFAULT 0,
    git_rev TEXT NOT NULL DEFAULT 'unknown',
    best_mapping TEXT NOT NULL DEFAULT '',
    best_schedule TEXT NOT NULL DEFAULT '',
    best_config TEXT NOT NULL DEFAULT '{}',
    best_cycles REAL NOT NULL DEFAULT 0.0,
    scoreboard TEXT NOT NULL DEFAULT '[]',
    created_at TEXT NOT NULL DEFAULT '',
    UNIQUE (graph_digest, seed, git_rev, scale)
);
"""

_V3_SQL = """
CREATE TABLE jobs (
    id INTEGER PRIMARY KEY,
    job_id TEXT NOT NULL UNIQUE,
    kind TEXT NOT NULL,
    spec TEXT NOT NULL DEFAULT '{}',
    spec_digest TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'queued',
    cells INTEGER NOT NULL DEFAULT 0,
    cells_done INTEGER NOT NULL DEFAULT 0,
    attempts INTEGER NOT NULL DEFAULT 0,
    error TEXT NOT NULL DEFAULT '',
    result TEXT,
    submitted_at TEXT NOT NULL DEFAULT '',
    started_at TEXT,
    finished_at TEXT
);
CREATE INDEX idx_jobs_digest ON jobs (spec_digest, state);
CREATE INDEX idx_jobs_state ON jobs (state);
"""

#: version → DDL applied when upgrading *to* that version, in order.
MIGRATIONS: dict[int, str] = {1: _V1_SQL, 2: _V2_SQL, 3: _V3_SQL}

#: ``runs`` columns that identify + measure a cell; everything a
#: deterministic rerun reproduces exactly. Volatile columns (id,
#: wall_ms, runs_count, created_at) are deliberately absent so
#: ``canonical_rows`` compares equal across serial/parallel runs.
CANONICAL_RUN_COLUMNS = (
    "graph_digest",
    "dataset",
    "scale",
    "algorithm",
    "mapping",
    "schedule",
    "config",
    "config_digest",
    "seed",
    "git_rev",
    "num_vertices",
    "num_edges",
    "cycles",
    "colors",
    "iterations",
    "time_ms",
    "simd_eff",
    "launch_fraction",
    "steal_attempts",
    "steals_succeeded",
    "chunks_migrated",
    "source",
)


# ----------------------------------------------------------------------
# digests and keys
# ----------------------------------------------------------------------


def graph_digest(graph: "CSRGraph") -> str:
    """Content digest of a CSR graph (same hash as the artifact cache)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(graph.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(graph.indices, dtype=np.int32).tobytes())
    return h.hexdigest()


def _jsonable(value: Any) -> Any:
    """Coerce dataclasses/numpy scalars into canonical JSON values."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def canonical_config(
    algorithm: str, config: Any, algo_kwargs: dict | None = None
) -> str:
    """Canonical JSON of a cell's *effective* configuration.

    ``config`` may be an :class:`ExecutionConfig` (preferred — two
    paths that build the same effective config digest identically) or a
    plain kwargs dict. ``algo_kwargs`` captures algorithm-level knobs
    (``switch_fraction``, ``priority``, ...) that live outside the
    execution config but change the run.
    """
    doc = {
        "algorithm": algorithm,
        "config": _jsonable(config),
        "algo": _jsonable(algo_kwargs or {}),
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def config_digest(
    algorithm: str, config: Any, algo_kwargs: dict | None = None
) -> str:
    """Stable digest of :func:`canonical_config`."""
    payload = canonical_config(algorithm, config, algo_kwargs)
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def run_key(row: dict[str, Any]) -> str:
    """Baseline-comparison key of a ``runs`` row.

    Deliberately excludes ``git_rev`` — the whole point of
    ``repro report`` is comparing the same cell *across* revisions.
    """
    return (
        f"{row['dataset']}@{row['scale']}/{row['algorithm']}"
        f":{row['mapping']}+{row['schedule']}"
        f"@seed{row['seed']}#{str(row['config_digest'])[:12]}"
    )


_GIT_REV_CACHE: dict[str, str] = {}


def current_git_rev(cwd: str | Path | None = None) -> str:
    """Short git revision of ``cwd`` (cached; ``REPRO_GIT_REV`` wins)."""
    override = os.environ.get("REPRO_GIT_REV")
    if override:
        return override
    key = str(Path(cwd) if cwd is not None else Path.cwd())
    if key not in _GIT_REV_CACHE:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=key,
                capture_output=True,
                text=True,
                timeout=10,
                check=False,
            )
            rev = proc.stdout.strip() if proc.returncode == 0 else ""
        except (OSError, subprocess.SubprocessError):
            rev = ""
        _GIT_REV_CACHE[key] = rev or "unknown"
    return _GIT_REV_CACHE[key]


def store_path_from_env(default: str | Path = DEFAULT_STORE) -> Path | None:
    """The store path named by :envvar:`REPRO_RUN_STORE`.

    ``None`` when the variable is set to a disabling value
    (``""``/``"0"``/``"off"``/``"none"``); ``default`` when unset.
    """
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return Path(default)
    if raw.strip().lower() in _DISABLED:
        return None
    return Path(raw)


def _utcnow() -> str:
    return _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds")


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------


class RunStore:
    """One sqlite experiment database (see the module docstring).

    Open it as a context manager or call :meth:`close`; every write
    commits immediately, so a crash between records loses at most the
    in-flight row. ``":memory:"`` is accepted for tests.
    """

    def __init__(self, path: str | Path = DEFAULT_STORE) -> None:
        self.path = Path(path) if str(path) != ":memory:" else path
        if isinstance(self.path, Path):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.conn = sqlite3.connect(str(self.path), timeout=30.0)
        # Anything after connect() can raise (a failing migration, the
        # newer-file refusal); without the close the half-built store
        # would leak an open WAL handle (and its -wal/-shm sidecars).
        try:
            self.conn.row_factory = sqlite3.Row
            self.conn.execute("PRAGMA journal_mode=WAL")
            self.conn.execute("PRAGMA busy_timeout=30000")
            self.conn.execute("PRAGMA synchronous=NORMAL")
            self._migrate()
        except BaseException:
            self.conn.close()
            raise

    # -- lifecycle ------------------------------------------------------

    def _migrate(self) -> None:
        version = self.schema_version()
        if version > SCHEMA_VERSION:
            raise RuntimeError(
                f"store {self.path} has schema v{version}, newer than this "
                f"code's v{SCHEMA_VERSION}; refusing to open"
            )
        for target in range(version + 1, SCHEMA_VERSION + 1):
            with self.conn:  # one transaction per migration step
                self.conn.executescript(MIGRATIONS[target])
                self.conn.execute(f"PRAGMA user_version={target}")

    def schema_version(self) -> int:
        return int(self.conn.execute("PRAGMA user_version").fetchone()[0])

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writes ---------------------------------------------------------

    def upsert_run(self, row: dict[str, Any]) -> None:
        """Insert or refresh one run row (idempotent on the content key).

        A re-run of the same (graph, config, seed, rev, scale) cell
        replaces the measurement columns and bumps ``runs_count``
        instead of appending a duplicate.
        """
        full = {
            "graph_digest": "",
            "dataset": "",
            "scale": "",
            "algorithm": "",
            "mapping": "thread",
            "schedule": "grid",
            "config": "{}",
            "config_digest": "",
            "seed": 0,
            "git_rev": "unknown",
            "num_vertices": 0,
            "num_edges": 0,
            "cycles": 0.0,
            "colors": 0,
            "iterations": 0,
            "time_ms": 0.0,
            "simd_eff": None,
            "launch_fraction": None,
            "steal_attempts": 0,
            "steals_succeeded": 0,
            "chunks_migrated": 0,
            "wall_ms": None,
            "source": "api",
            "created_at": _utcnow(),
        }
        unknown = set(row) - set(full)
        if unknown:
            raise KeyError(f"unknown runs columns: {sorted(unknown)}")
        full.update(row)
        cols = list(full)
        updates = [
            c
            for c in cols
            if c not in ("graph_digest", "config_digest", "seed", "git_rev", "scale")
        ]
        sql = (
            f"INSERT INTO runs ({', '.join(cols)}) "
            f"VALUES ({', '.join(':' + c for c in cols)}) "
            "ON CONFLICT (graph_digest, config_digest, seed, git_rev, scale) "
            "DO UPDATE SET "
            + ", ".join(f"{c}=excluded.{c}" for c in updates)
            + ", runs_count=runs.runs_count+1"
        )
        with self.conn:
            self.conn.execute(sql, full)

    def upsert_graph(
        self,
        digest: str,
        *,
        dataset: str = "",
        scale: str = "",
        num_vertices: int = 0,
        num_edges: int = 0,
    ) -> None:
        with self.conn:
            self.conn.execute(
                "INSERT INTO graphs (digest, dataset, scale, num_vertices, num_edges) "
                "VALUES (?, ?, ?, ?, ?) ON CONFLICT (digest) DO UPDATE SET "
                "dataset=excluded.dataset, scale=excluded.scale, "
                "num_vertices=excluded.num_vertices, num_edges=excluded.num_edges",
                (digest, dataset, scale, int(num_vertices), int(num_edges)),
            )

    def upsert_experiment(
        self,
        *,
        experiment_id: str,
        paper_artifact: str = "",
        paper_claim: str = "",
        measured: str = "",
        shape_holds: bool = False,
        details: dict | None = None,
        git_rev: str = "unknown",
        scale: str = "",
    ) -> None:
        with self.conn:
            self.conn.execute(
                "INSERT INTO experiments (experiment_id, paper_artifact, "
                "paper_claim, measured, shape_holds, details, git_rev, scale, "
                "created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (experiment_id, git_rev, scale) DO UPDATE SET "
                "paper_artifact=excluded.paper_artifact, "
                "paper_claim=excluded.paper_claim, measured=excluded.measured, "
                "shape_holds=excluded.shape_holds, details=excluded.details, "
                "created_at=excluded.created_at",
                (
                    experiment_id,
                    paper_artifact,
                    paper_claim,
                    measured,
                    int(bool(shape_holds)),
                    json.dumps(_jsonable(details or {}), sort_keys=True),
                    git_rev,
                    scale,
                    _utcnow(),
                ),
            )

    def upsert_tuning(
        self,
        *,
        graph_digest: str,
        dataset: str = "",
        scale: str = "",
        seed: int = 0,
        git_rev: str = "unknown",
        best_mapping: str = "",
        best_schedule: str = "",
        best_config: dict | None = None,
        best_cycles: float = 0.0,
        scoreboard: list | None = None,
    ) -> None:
        with self.conn:
            self.conn.execute(
                "INSERT INTO tunings (graph_digest, dataset, scale, seed, "
                "git_rev, best_mapping, best_schedule, best_config, "
                "best_cycles, scoreboard, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (graph_digest, seed, git_rev, scale) DO UPDATE SET "
                "best_mapping=excluded.best_mapping, "
                "best_schedule=excluded.best_schedule, "
                "best_config=excluded.best_config, "
                "best_cycles=excluded.best_cycles, "
                "scoreboard=excluded.scoreboard, created_at=excluded.created_at",
                (
                    graph_digest,
                    dataset,
                    scale,
                    int(seed),
                    git_rev,
                    best_mapping,
                    best_schedule,
                    json.dumps(_jsonable(best_config or {}), sort_keys=True),
                    float(best_cycles),
                    json.dumps(_jsonable(scoreboard or []), sort_keys=True),
                    _utcnow(),
                ),
            )

    # -- jobs (the repro.serve ledger) ----------------------------------

    def insert_job(
        self,
        *,
        job_id: str,
        kind: str,
        spec: str,
        spec_digest: str,
        cells: int = 0,
    ) -> None:
        """Record a freshly submitted job (state ``queued``)."""
        with self.conn:
            self.conn.execute(
                "INSERT INTO jobs (job_id, kind, spec, spec_digest, state, "
                "cells, submitted_at) VALUES (?, ?, ?, ?, 'queued', ?, ?)",
                (job_id, kind, spec, spec_digest, int(cells), _utcnow()),
            )

    def job(self, job_id: str) -> dict[str, Any] | None:
        """One job row by id, or ``None``."""
        row = self.conn.execute(
            "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        return dict(row) if row is not None else None

    _JOB_MUTABLE = frozenset(
        {
            "state",
            "cells",
            "cells_done",
            "attempts",
            "error",
            "result",
            "started_at",
            "finished_at",
        }
    )

    def update_job(self, job_id: str, **fields: Any) -> None:
        """Update whitelisted columns of one job row."""
        unknown = set(fields) - self._JOB_MUTABLE
        if unknown:
            raise KeyError(f"immutable/unknown jobs columns: {sorted(unknown)}")
        if "state" in fields and fields["state"] not in JOB_STATES:
            raise ValueError(f"unknown job state {fields['state']!r}")
        if not fields:
            return
        cols = sorted(fields)
        with self.conn:
            self.conn.execute(
                f"UPDATE jobs SET {', '.join(f'{c} = :{c}' for c in cols)} "
                "WHERE job_id = :job_id",
                {**fields, "job_id": job_id},
            )

    def jobs_by_digest(self, spec_digest: str) -> list[dict[str, Any]]:
        """Jobs sharing one dedup digest, newest first."""
        return self.query(
            "SELECT * FROM jobs WHERE spec_digest = ? ORDER BY id DESC",
            (spec_digest,),
        )

    def list_jobs(
        self, *, state: str | None = None, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """Job rows (newest first), optionally filtered by state."""
        sql = "SELECT * FROM jobs"
        params: tuple = ()
        if state is not None:
            sql += " WHERE state = ?"
            params = (state,)
        sql += " ORDER BY id DESC"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return self.query(sql, params)

    def reset_interrupted_jobs(self) -> list[str]:
        """Re-queue every non-terminal job; returns their ids, oldest first.

        The recovery primitive behind ``repro serve --recover``: jobs a
        dead server left ``queued`` or ``running`` go back to ``queued``
        (keeping their attempt count) so a fresh executor re-runs them.
        Terminal jobs are untouched.
        """
        rows = self.query(
            "SELECT job_id FROM jobs "
            "WHERE state NOT IN ('done', 'failed', 'cancelled') ORDER BY id"
        )
        ids = [str(r["job_id"]) for r in rows]
        if ids:
            with self.conn:
                self.conn.executemany(
                    "UPDATE jobs SET state = 'queued', started_at = NULL "
                    "WHERE job_id = ?",
                    [(i,) for i in ids],
                )
        return ids

    # -- queries --------------------------------------------------------

    def query(self, sql: str, params: tuple = ()) -> list[dict[str, Any]]:
        """Arbitrary read query, rows as plain dicts."""
        return [dict(r) for r in self.conn.execute(sql, params).fetchall()]

    def runs(
        self,
        *,
        dataset: str | None = None,
        algorithm: str | None = None,
        scale: str | None = None,
        git_rev: str | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Run rows (newest first), optionally filtered."""
        clauses, params = [], []
        for col, val in (
            ("dataset", dataset),
            ("algorithm", algorithm),
            ("scale", scale),
            ("git_rev", git_rev),
        ):
            if val is not None:
                clauses.append(f"{col} = ?")
                params.append(val)
        sql = "SELECT * FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id DESC"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return self.query(sql, tuple(params))

    def canonical_rows(self) -> list[tuple]:
        """The deterministic content of ``runs``, as a sorted row list.

        Excludes volatile columns (autoincrement id, wall time, dedupe
        counter, timestamps), so two stores populated by the same cells
        — serially or across worker processes — compare equal.
        """
        cols = ", ".join(CANONICAL_RUN_COLUMNS)
        rows = self.conn.execute(f"SELECT {cols} FROM runs").fetchall()
        return sorted(tuple(r) for r in rows)

    def latest_runs(self) -> dict[str, dict[str, Any]]:
        """Newest run row per baseline key (:func:`run_key`)."""
        latest: dict[str, dict[str, Any]] = {}
        for row in self.query("SELECT * FROM runs ORDER BY id"):
            latest[run_key(row)] = row
        return latest

    def experiments(
        self, *, scale: str | None = None, latest_only: bool = True
    ) -> list[dict[str, Any]]:
        """Experiment verdict rows; newest per experiment id by default."""
        sql = "SELECT * FROM experiments"
        params: tuple = ()
        if scale is not None:
            sql += " WHERE scale = ?"
            params = (scale,)
        sql += " ORDER BY id"
        rows = self.query(sql, params)
        if not latest_only:
            return rows
        latest: dict[str, dict[str, Any]] = {}
        for row in rows:
            latest[row["experiment_id"]] = row
        return [latest[k] for k in sorted(latest)]

    def counts(self) -> dict[str, int]:
        """Row counts per table (``repro db info``)."""
        return {
            table: int(
                self.conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            )
            for table in ("runs", "experiments", "graphs", "tunings", "jobs")
        }


def ingest_jsonl(
    store: RunStore,
    jsonl_path: str | Path,
    *,
    git_rev: str = "imported",
    scale: str = "standard",
) -> int:
    """Import legacy ``records.jsonl`` verdicts into ``store``.

    Returns the number of records upserted. Used by
    ``scripts/backfill_store.py`` and ``repro db ingest``; tolerant of
    corrupt lines (they are skipped with a warning by
    :func:`~repro.analysis.experiment.load_records`).
    """
    from ..analysis.experiment import load_records

    records = load_records(jsonl_path)
    for rec in records:
        store.upsert_experiment(
            experiment_id=rec.experiment_id,
            paper_artifact=rec.paper_artifact,
            paper_claim=rec.paper_claim,
            measured=rec.measured,
            shape_holds=bool(rec.shape_holds),
            details=dict(rec.details),
            git_rev=git_rev,
            scale=scale,
        )
    return len(records)

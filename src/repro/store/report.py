"""Regression reports — diff the run store against a committed baseline.

The store makes "did this PR make anything slower or worse?" a query.
This module turns that query into a CI gate:

* :func:`snapshot` reduces a store to its comparable surface — the
  newest run per content key (cycles, colors, iterations, simulated
  and host wall time) plus the newest verdict per experiment.
* :func:`save_baseline` / :func:`load_baseline` persist a snapshot as
  human-diffable JSON (``benchmarks/results/baseline.json`` is the
  committed one).
* :func:`compare` diffs a current snapshot against a baseline under
  per-metric :class:`Thresholds` and returns a
  :class:`RegressionReport`; ``repro report --fail-on-regression``
  exits nonzero when it finds any.

Keys deliberately exclude the git revision (see
:func:`~repro.store.db.run_key`): the report compares the *same cell*
across revisions. Host wall time is gated only when the baseline
recorded one — simulated cycles are deterministic, wall clocks are
not, so committed baselines usually strip wall times
(``--strip-wall``) and lean on the cycle gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .db import SCHEMA_VERSION, RunStore

__all__ = [
    "Thresholds",
    "Regression",
    "RegressionReport",
    "snapshot",
    "save_baseline",
    "load_baseline",
    "compare",
]

#: run metrics carried into a snapshot, in stored-row column names.
_SNAPSHOT_METRICS = ("cycles", "colors", "iterations", "time_ms", "wall_ms")


@dataclass(frozen=True)
class Thresholds:
    """Per-metric regression tolerances.

    ``cycles`` and ``wall`` are fractional increases (0.05 = +5 % is
    still fine); ``colors`` and ``iterations`` are absolute increases.
    A ``None`` threshold disables that gate.
    """

    cycles: float | None = 0.02
    colors: int | None = 0
    iterations: int | None = 0
    wall: float | None = 1.0

    def limit(self, metric: str, base: float) -> float | None:
        """Largest acceptable current value for ``metric`` at ``base``."""
        if metric in ("cycles", "time_ms"):
            return None if self.cycles is None else base * (1.0 + self.cycles)
        if metric == "colors":
            return None if self.colors is None else base + self.colors
        if metric == "iterations":
            return None if self.iterations is None else base + self.iterations
        if metric == "wall_ms":
            return None if self.wall is None else base * (1.0 + self.wall)
        raise KeyError(f"unknown metric {metric!r}")


@dataclass(frozen=True)
class Regression:
    """One metric of one cell that got worse beyond its threshold."""

    key: str
    metric: str
    baseline: float
    current: float

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def fraction(self) -> float:
        return self.delta / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        if self.metric in ("cycles", "time_ms", "wall_ms"):
            return (
                f"{self.key}: {self.metric} {self.baseline:g} → "
                f"{self.current:g} (+{100 * self.fraction:.1f} %)"
            )
        return (
            f"{self.key}: {self.metric} {self.baseline:g} → {self.current:g} "
            f"(+{self.delta:g})"
        )


@dataclass
class RegressionReport:
    """Outcome of one baseline-vs-current comparison."""

    regressions: list[Regression] = field(default_factory=list)
    improvements: list[Regression] = field(default_factory=list)
    broken_experiments: list[str] = field(default_factory=list)
    fixed_experiments: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)  # in baseline, not current
    new: list[str] = field(default_factory=list)  # in current, not baseline
    matched: int = 0
    experiments_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.broken_experiments

    def summary(self) -> str:
        status = "ok" if self.ok else "REGRESSIONS"
        lines = [
            f"report: {status} — {self.matched} cells compared, "
            f"{len(self.regressions)} regressions, "
            f"{len(self.improvements)} improvements, "
            f"{self.experiments_checked} experiment verdicts "
            f"({len(self.broken_experiments)} newly diverging), "
            f"{len(self.missing)} missing, {len(self.new)} new"
        ]
        lines.extend(f"  REGRESSION {r.describe()}" for r in self.regressions)
        lines.extend(
            f"  DIVERGES {eid}: shape held in baseline, diverges now"
            for eid in self.broken_experiments
        )
        lines.extend(
            f"  improved {r.describe()}" for r in self.improvements[:10]
        )
        if len(self.improvements) > 10:
            lines.append(f"  … and {len(self.improvements) - 10} more improvements")
        lines.extend(
            f"  fixed {eid}: diverged in baseline, holds now"
            for eid in self.fixed_experiments
        )
        lines.extend(f"  missing from current: {k}" for k in self.missing)
        if self.new:
            lines.append(f"  new cells (not in baseline): {len(self.new)}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "matched": self.matched,
            "experiments_checked": self.experiments_checked,
            "regressions": [
                {
                    "key": r.key,
                    "metric": r.metric,
                    "baseline": r.baseline,
                    "current": r.current,
                }
                for r in self.regressions
            ],
            "improvements": [
                {
                    "key": r.key,
                    "metric": r.metric,
                    "baseline": r.baseline,
                    "current": r.current,
                }
                for r in self.improvements
            ],
            "broken_experiments": self.broken_experiments,
            "fixed_experiments": self.fixed_experiments,
            "missing": self.missing,
            "new": self.new,
        }


def snapshot(store: RunStore, *, strip_wall: bool = False) -> dict[str, Any]:
    """The comparable surface of a store (newest row per key)."""
    runs: dict[str, dict[str, Any]] = {}
    for key, row in store.latest_runs().items():
        metrics = {m: row[m] for m in _SNAPSHOT_METRICS if row[m] is not None}
        if strip_wall:
            metrics.pop("wall_ms", None)
        runs[key] = metrics
    experiments = {
        row["experiment_id"]: {"shape_holds": bool(row["shape_holds"])}
        for row in store.experiments()
    }
    return {
        "schema": SCHEMA_VERSION,
        "runs": dict(sorted(runs.items())),
        "experiments": dict(sorted(experiments.items())),
    }


def save_baseline(snap: dict[str, Any], path: str | Path) -> None:
    """Persist a snapshot as sorted, human-diffable JSON."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")


def load_baseline(path: str | Path) -> dict[str, Any]:
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "runs" not in doc:
        raise ValueError(f"{path} is not a baseline snapshot (no 'runs' key)")
    return doc


def compare(
    current: RunStore | dict[str, Any],
    baseline: dict[str, Any],
    *,
    thresholds: Thresholds | None = None,
) -> RegressionReport:
    """Diff a current store (or snapshot) against a baseline snapshot."""
    thresholds = thresholds if thresholds is not None else Thresholds()
    snap = current if isinstance(current, dict) else snapshot(current)
    report = RegressionReport()

    base_runs: dict[str, dict] = baseline.get("runs", {})
    cur_runs: dict[str, dict] = snap.get("runs", {})
    for key, base_metrics in base_runs.items():
        cur_metrics = cur_runs.get(key)
        if cur_metrics is None:
            report.missing.append(key)
            continue
        report.matched += 1
        for metric in _SNAPSHOT_METRICS:
            base_v = base_metrics.get(metric)
            cur_v = cur_metrics.get(metric)
            if base_v is None or cur_v is None:
                continue
            limit = thresholds.limit(metric, float(base_v))
            if limit is not None and float(cur_v) > limit:
                report.regressions.append(
                    Regression(key, metric, float(base_v), float(cur_v))
                )
            elif float(cur_v) < float(base_v) and metric != "wall_ms":
                report.improvements.append(
                    Regression(key, metric, float(base_v), float(cur_v))
                )
    report.new = sorted(set(cur_runs) - set(base_runs))
    report.missing.sort()

    base_exps: dict[str, dict] = baseline.get("experiments", {})
    cur_exps: dict[str, dict] = snap.get("experiments", {})
    for eid, base_e in base_exps.items():
        cur_e = cur_exps.get(eid)
        if cur_e is None:
            continue
        report.experiments_checked += 1
        held, holds = bool(base_e.get("shape_holds")), bool(cur_e.get("shape_holds"))
        if held and not holds:
            report.broken_experiments.append(eid)
        elif holds and not held:
            report.fixed_experiments.append(eid)
    report.broken_experiments.sort()
    report.fixed_experiments.sort()
    return report

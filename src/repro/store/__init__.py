"""repro.store — the persistent experiment database.

The queryable successor to ``benchmarks/results/records.jsonl``:

* :mod:`repro.store.db` — :class:`RunStore`, a WAL-mode sqlite store
  with a versioned/migrated schema and content-keyed idempotent
  upserts (re-runs dedupe instead of append).
* :mod:`repro.store.recorder` — :class:`Recorder`, the handle the
  harness (runner, batch, parallel workers, autotune, benches) threads
  through to land every run in the store.
* :mod:`repro.store.pipeline` — declarative experiment matrices
  (suite → cells → records) runnable by name or JSON spec.
* :mod:`repro.store.report` — baseline snapshots and the
  ``repro report`` regression gate.
"""

from .db import (
    JOB_STATES,
    MIGRATIONS,
    SCHEMA_VERSION,
    TERMINAL_JOB_STATES,
    RunStore,
    config_digest,
    current_git_rev,
    graph_digest,
    ingest_jsonl,
    run_key,
    store_path_from_env,
)
from .pipeline import (
    PIPELINES,
    Pipeline,
    PipelineStep,
    load_pipeline,
    pipeline_from_spec,
    resolve_pipeline,
    run_pipeline,
)
from .recorder import Recorder, RecorderSpec, recorder_from_env
from .report import (
    Regression,
    RegressionReport,
    Thresholds,
    compare,
    load_baseline,
    save_baseline,
    snapshot,
)

__all__ = [
    "JOB_STATES",
    "MIGRATIONS",
    "PIPELINES",
    "Pipeline",
    "PipelineStep",
    "Recorder",
    "RecorderSpec",
    "Regression",
    "RegressionReport",
    "RunStore",
    "SCHEMA_VERSION",
    "TERMINAL_JOB_STATES",
    "Thresholds",
    "compare",
    "config_digest",
    "current_git_rev",
    "graph_digest",
    "ingest_jsonl",
    "load_baseline",
    "load_pipeline",
    "pipeline_from_spec",
    "recorder_from_env",
    "resolve_pipeline",
    "run_key",
    "run_pipeline",
    "save_baseline",
    "snapshot",
    "store_path_from_env",
]

"""Declarative pipelines — suite → cells → recorded rows.

A pipeline is a *description* of an experiment matrix (musered-recipe
style): named steps, each declaring datasets × algorithms × mappings ×
schedules × seeds (plus fixed config kwargs), at one scale. Running a
pipeline expands every step into :class:`~repro.harness.batch.BatchJob`
cells, executes them through the ordinary batch runner (serial or
``--jobs N`` parallel — rows are bit-identical either way), and records
each cell into the run store tagged ``pipeline:<name>/<step>``.

Pipelines are plain data, so they round-trip through JSON
(:func:`pipeline_from_spec` / :func:`load_pipeline`) and ship as
checked-in files a CI job can replay against a committed baseline::

    repro pipeline run report-smoke --store ci.sqlite
    repro report --store ci.sqlite --baseline tests/data/report_baseline.json \\
        --fail-on-regression
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..gpusim.device import DeviceConfig
    from ..harness.batch import BatchJob
    from .recorder import Recorder

__all__ = [
    "PIPELINES",
    "Pipeline",
    "PipelineStep",
    "load_pipeline",
    "pipeline_from_spec",
    "resolve_pipeline",
    "run_pipeline",
]


@dataclass(frozen=True)
class PipelineStep:
    """One step: a cartesian cell matrix plus fixed config kwargs."""

    name: str
    datasets: tuple[str, ...]
    algorithms: tuple[str, ...] = ("maxmin",)
    mappings: tuple[str, ...] = ("thread",)
    schedules: tuple[str, ...] = ("grid",)
    seeds: tuple[int, ...] = (0,)
    config: dict[str, Any] = field(default_factory=dict)

    def jobs(self) -> list["BatchJob"]:
        """Expand the matrix into batch cells (row-major, declared order)."""
        from ..harness.batch import BatchJob

        return [
            BatchJob(
                dataset=ds,
                algorithm=algo,
                mapping=mapping,
                schedule=schedule,
                seed=seed,
                config=dict(self.config),
            )
            for ds in self.datasets
            for algo in self.algorithms
            for mapping in self.mappings
            for schedule in self.schedules
            for seed in self.seeds
        ]

    def to_spec(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "datasets": list(self.datasets),
            "algorithms": list(self.algorithms),
            "mappings": list(self.mappings),
            "schedules": list(self.schedules),
            "seeds": list(self.seeds),
            "config": dict(self.config),
        }


@dataclass(frozen=True)
class Pipeline:
    """A named, scale-pinned sequence of steps."""

    name: str
    scale: str = "tiny"
    steps: tuple[PipelineStep, ...] = ()
    description: str = ""

    def jobs(self) -> list["BatchJob"]:
        return [job for step in self.steps for job in step.jobs()]

    def to_spec(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "scale": self.scale,
            "description": self.description,
            "steps": [s.to_spec() for s in self.steps],
        }


def pipeline_from_spec(spec: dict[str, Any]) -> Pipeline:
    """Build a :class:`Pipeline` from its plain-data description."""
    if "name" not in spec:
        raise ValueError("pipeline spec needs a 'name'")
    steps = []
    for i, raw in enumerate(spec.get("steps", [])):
        if "datasets" not in raw:
            raise ValueError(f"step {i} needs 'datasets'")
        steps.append(
            PipelineStep(
                name=str(raw.get("name", f"step{i}")),
                datasets=tuple(raw["datasets"]),
                algorithms=tuple(raw.get("algorithms", ("maxmin",))),
                mappings=tuple(raw.get("mappings", ("thread",))),
                schedules=tuple(raw.get("schedules", ("grid",))),
                seeds=tuple(int(s) for s in raw.get("seeds", (0,))),
                config=dict(raw.get("config", {})),
            )
        )
    return Pipeline(
        name=str(spec["name"]),
        scale=str(spec.get("scale", "tiny")),
        steps=tuple(steps),
        description=str(spec.get("description", "")),
    )


def load_pipeline(path: str | Path) -> Pipeline:
    """Load a pipeline from a JSON spec file."""
    return pipeline_from_spec(json.loads(Path(path).read_text()))


#: Built-in pipelines. ``report-smoke`` is the CI regression-gate
#: matrix: every structural class (skewed + uniform), the paper's
#: baseline and stealing schedules, tiny scale so the gate stays fast.
PIPELINES: dict[str, Pipeline] = {
    p.name: p
    for p in [
        Pipeline(
            name="report-smoke",
            scale="tiny",
            description="CI regression gate: 3 graphs × 3 algorithms × 2 schedules",
            steps=(
                PipelineStep(
                    name="grid",
                    datasets=("rmat", "powerlaw", "grid2d"),
                    algorithms=("maxmin", "jp", "speculative"),
                    schedules=("grid",),
                ),
                PipelineStep(
                    name="stealing",
                    datasets=("rmat", "powerlaw", "grid2d"),
                    algorithms=("maxmin", "jp", "speculative"),
                    schedules=("stealing",),
                ),
            ),
        ),
        Pipeline(
            name="paper-small",
            scale="small",
            description="the paper's core comparison at integration scale",
            steps=(
                PipelineStep(
                    name="approaches",
                    datasets=("rmat", "powerlaw", "road", "grid2d", "random"),
                    algorithms=("maxmin", "jp", "speculative", "hybrid-switch"),
                ),
                PipelineStep(
                    name="balancing",
                    datasets=("rmat", "powerlaw"),
                    algorithms=("maxmin",),
                    schedules=("grid", "dynamic", "stealing"),
                ),
            ),
        ),
    ]
}


def resolve_pipeline(name_or_path: str) -> Pipeline:
    """A built-in pipeline by name, or a JSON spec by path."""
    if name_or_path in PIPELINES:
        return PIPELINES[name_or_path]
    path = Path(name_or_path)
    if path.exists():
        return load_pipeline(path)
    raise KeyError(
        f"{name_or_path!r} is neither a built-in pipeline "
        f"({', '.join(sorted(PIPELINES))}) nor a spec file"
    )


def run_pipeline(
    pipeline: Pipeline,
    recorder: "Recorder",
    *,
    device: "DeviceConfig | None" = None,
    scale: str | None = None,
    jobs: int = 1,
    deep_validate: bool = False,
) -> list[dict[str, Any]]:
    """Execute every step and record every cell; returns all rows.

    Each step's rows land in the store tagged
    ``pipeline:<pipeline>/<step>``; the rows (and the recorded row
    set) are bit-identical for any ``jobs`` value.
    """
    from ..gpusim.device import RADEON_HD_7950
    from ..harness.batch import run_batch

    device = device if device is not None else RADEON_HD_7950
    scale = scale if scale is not None else pipeline.scale
    rows: list[dict[str, Any]] = []
    for step in pipeline.steps:
        step_recorder = recorder.with_source(f"pipeline:{pipeline.name}/{step.name}")
        rows.extend(
            run_batch(
                step.jobs(),
                device=device,
                scale=scale,
                deep_validate=deep_validate,
                parallel_jobs=jobs,
                recorder=step_recorder,
            )
        )
    return rows

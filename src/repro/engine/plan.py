"""Cached execution plans — per-iteration work distributions, memoized.

Timing one coloring iteration means re-deriving the same per-graph
invariants every sweep: lane cost vectors, degree partitions (hybrid
mapping), wavefront lockstep costs, and chunk cost vectors (persistent
schedules). Those depend only on *(active-degree array, execution
configuration, cost model)* — and iterative algorithms, batch sweeps,
and repeated benchmark cells keep presenting the same triples. An
:class:`ExecutionPlan` packages the derived arrays; a :class:`PlanCache`
memoizes them under a content fingerprint so warm iterations skip
straight to dispatch.

The cache is exact, not approximate: the key fingerprints the degree
bytes plus the full (hashable, frozen) ``ExecutionConfig`` and
``CostModel``, so any change to the graph, the chunk size, the mapping,
or the device invalidates by construction.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..gpusim.wavefront import (
    DivergenceStats,
    divergence_stats,
    simd_efficiency,
    wavefront_costs,
)
from ..loadbalance.partition import chunk_costs, chunk_ranges, partition_by_threshold

if TYPE_CHECKING:
    from ..coloring.kernels import CostModel, ExecutionConfig
    from ..gpusim.device import DeviceConfig

__all__ = [
    "ExecutionPlan",
    "PlanCache",
    "build_plan",
    "coop_efficiency",
    "degrees_fingerprint",
]


def degrees_fingerprint(degrees: np.ndarray) -> tuple[int, bytes]:
    """Content fingerprint of a degree array (size + blake2b digest)."""
    deg = np.ascontiguousarray(degrees, dtype=np.int64)
    return deg.size, hashlib.blake2b(deg.tobytes(), digest_size=16).digest()


def coop_efficiency(degrees: np.ndarray, lanes: int) -> float:
    """Lane utilization of cooperative strides (partial last stride)."""
    d = np.asarray(degrees, dtype=np.float64)
    steps = np.maximum(np.ceil(d / lanes), 1.0)
    return float(d.sum() / (steps.sum() * lanes)) if d.size else 1.0


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything derivable before dispatch for one iteration's kernel.

    Exactly one artifact family is populated, per the configuration the
    plan was built for:

    * grid + thread mapping → ``item_cycles`` (per-lane costs);
    * grid + wavefront/hybrid mapping → ``tasks`` (per-wavefront costs),
      plus ``divergence`` for the hybrid's low-degree half;
    * persistent schedules → ``chunk_cycles``.

    ``degrees`` is the thread-id-order degree array actually timed
    (descending-sorted when the configuration says so), ``traffic_elements``
    the kernel's DRAM roofline input, and ``simd_efficiency`` the lane
    utilization for paths where dispatch does not compute it itself.
    """

    degrees: np.ndarray
    traffic_elements: float
    simd_efficiency: float = 1.0
    item_cycles: np.ndarray | None = None
    tasks: np.ndarray | None = None
    divergence: DivergenceStats | None = None
    chunk_cycles: np.ndarray | None = None
    kernel_suffix: str = ""


def build_plan(
    degrees: np.ndarray,
    config: "ExecutionConfig",
    costs: "CostModel",
    device: "DeviceConfig",
) -> ExecutionPlan:
    """Derive the work distribution for ``degrees`` under ``config``.

    ``config`` is an :class:`~repro.coloring.kernels.ExecutionConfig`,
    ``costs`` a :class:`~repro.coloring.kernels.CostModel`, ``device``
    a :class:`~repro.gpusim.device.DeviceConfig`.
    """
    deg = np.asarray(degrees, dtype=np.int64).ravel()
    if config.sort_by_degree:
        # Descending: packs similar degrees into the same wavefront
        # (less divergence) *and* dispatches the heavy work first
        # (LPT-style, shrinking the idle tail).
        deg = np.sort(deg)[::-1]
    traffic = costs.traffic_elements(deg)
    if config.schedule == "grid":
        return _grid_plan(deg, config, costs, device, traffic)
    chunks, eff = _persistent_chunks(deg, config, costs, device)
    return ExecutionPlan(
        degrees=deg,
        traffic_elements=traffic,
        simd_efficiency=eff,
        chunk_cycles=chunks,
    )


def _grid_plan(
    deg: np.ndarray,
    config: "ExecutionConfig",
    costs: "CostModel",
    device: "DeviceConfig",
    traffic: float,
) -> ExecutionPlan:
    if config.mapping == "thread":
        return ExecutionPlan(
            degrees=deg,
            traffic_elements=traffic,
            item_cycles=costs.thread_vertex_cycles(deg),
        )
    if config.mapping == "wavefront":
        return ExecutionPlan(
            degrees=deg,
            traffic_elements=traffic,
            simd_efficiency=coop_efficiency(deg, device.wavefront_size),
            tasks=costs.coop_vertex_cycles(deg),
        )
    # hybrid: one fused launch — low-degree lanes packed into wavefront
    # tasks, high-degree vertices as cooperative tasks.
    low, high = partition_by_threshold(deg, config.degree_threshold)
    task_parts: list[np.ndarray] = []
    if low.size:
        lane = costs.thread_vertex_cycles(deg[low])
        task_parts.append(wavefront_costs(lane, device.wavefront_size))
    if high.size:
        task_parts.append(costs.coop_vertex_cycles(deg[high]))
    tasks = np.concatenate(task_parts) if task_parts else np.empty(0)
    div = (
        divergence_stats(costs.thread_vertex_cycles(deg[low]), device.wavefront_size)
        if low.size
        else None
    )
    eff = div.simd_efficiency if div else coop_efficiency(deg, device.wavefront_size)
    return ExecutionPlan(
        degrees=deg,
        traffic_elements=traffic,
        simd_efficiency=eff,
        tasks=tasks,
        divergence=div,
        kernel_suffix="+coop",
    )


def _persistent_chunks(
    deg: np.ndarray,
    config: "ExecutionConfig",
    costs: "CostModel",
    device: "DeviceConfig",
) -> tuple[np.ndarray, float]:
    """Per-chunk execution cycles under the configured mapping.

    A persistent workgroup executes a chunk in lockstep *rounds* of
    ``workgroup_size`` lanes (its wavefronts run concurrently on the
    CU's SIMDs, so a round costs its slowest lane). Under the hybrid
    mapping, high-degree vertices are pulled out of the chunks and
    appended as single-vertex cooperative chunks (processed by a whole
    workgroup striding the neighbor list).
    """
    wg = config.workgroup_size
    if config.mapping == "thread":
        lane = costs.thread_vertex_cycles(deg)
        eff = simd_efficiency(lane, device.wavefront_size)
        rounds = wavefront_costs(lane, wg)
        rounds_per_chunk = config.chunk_size // wg
        ranges = chunk_ranges(rounds.size, rounds_per_chunk)
        return chunk_costs(rounds, ranges), eff
    if config.mapping == "wavefront":
        # one vertex per chunk round, whole workgroup cooperates
        tasks = costs.coop_vertex_cycles(deg, lanes=wg)
        eff = coop_efficiency(deg, wg)
        per_chunk = max(1, config.chunk_size // wg)
        ranges = chunk_ranges(tasks.size, per_chunk)
        return chunk_costs(tasks, ranges), eff
    # hybrid
    low, high = partition_by_threshold(deg, config.degree_threshold)
    parts: list[np.ndarray] = []
    eff_lane = None
    if low.size:
        lane = costs.thread_vertex_cycles(deg[low])
        eff_lane = simd_efficiency(lane, device.wavefront_size)
        rounds = wavefront_costs(lane, wg)
        ranges = chunk_ranges(rounds.size, config.chunk_size // wg)
        parts.append(chunk_costs(rounds, ranges))
    if high.size:
        parts.append(costs.coop_vertex_cycles(deg[high], lanes=wg))
    chunks = np.concatenate(parts) if parts else np.empty(0)
    eff = eff_lane if eff_lane is not None else coop_efficiency(deg, wg)
    return chunks, eff


class PlanCache:
    """Bounded LRU cache of :class:`ExecutionPlan` values.

    Keys are arbitrary hashables (the executor keys on the degree
    fingerprint + configuration + cost model). ``max_entries`` bounds
    memory: iterative algorithms present one distinct active set per
    round, so an unbounded cache would grow with iteration count.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Hashable, ExecutionPlan] = OrderedDict()

    def get_or_build(
        self, key: Hashable, builder: Callable[[], ExecutionPlan]
    ) -> ExecutionPlan:
        """Return the cached plan for ``key``, building it on a miss."""
        plan = self._entries.get(key)
        if plan is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return plan
        self.misses += 1
        plan = builder()
        self._entries[key] = plan
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return plan

    def clear(self) -> None:
        """Drop every entry and zero the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def items(self) -> list[tuple[Hashable, ExecutionPlan]]:
        """Snapshot of the cached ``(key, plan)`` pairs, LRU order.

        Used by :mod:`repro.harness.artifacts` to persist warm plans
        across benchmark invocations.
        """
        return list(self._entries.items())

    def seed(self, entries: Iterable[tuple[Hashable, ExecutionPlan]]) -> int:
        """Pre-populate from ``(key, plan)`` pairs; returns count added.

        Existing keys are left untouched (a live entry is at least as
        fresh as a persisted one); the LRU bound still applies.
        """
        added = 0
        for key, plan in entries:
            if key in self._entries:
                continue
            self._entries[key] = plan
            added += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return added

    def stats(self) -> dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self._entries)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )

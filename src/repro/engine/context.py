"""RunContext — the one object a whole run threads through.

Before this layer existed, every entry point re-derived the same
plumbing ad hoc: a ``DeviceConfig`` here, a fresh ``MemoryModel`` there,
loose ``seed`` kwargs, and per-executor counters that could not be
aggregated across a batch. :class:`RunContext` bundles that state —
device, memory model, seed, array backend, plan cache, and the
counter/trace sinks — so algorithms, the executor, the harness, and the
CLI all consume one explicitly-passed object.

Sharing matters: every executor built from the same context shares its
:class:`~repro.engine.plan.PlanCache` (warm plans carry across batch
cells and autotune probes) and reports into its run-level
:class:`~repro.gpusim.counters.ExecutionCounters` on top of its own
per-run window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..gpusim.counters import ExecutionCounters
from ..gpusim.device import RADEON_HD_7950, DeviceConfig
from ..gpusim.memory import MemoryModel
from ..obs.sink import (
    DEFAULT_TRACE_CAPACITY,
    LegacyDictListSink,
    RingBufferSink,
    TeeSink,
)
from ..obs.tracer import Tracer
from .backend import ArrayBackend, get_default_backend, make_backend
from .plan import PlanCache

if TYPE_CHECKING:
    from ..coloring.kernels import ExecutionConfig, GPUExecutor
    from ..obs.registry import MetricsRegistry

__all__ = ["RunContext", "resolve_context"]


@dataclass
class RunContext:
    """Shared execution state for one run (or one batch of runs).

    Parameters
    ----------
    device:
        Machine model every executor built from this context targets.
    memory:
        Memory-system model; built from ``device`` when omitted.
    seed:
        Default RNG seed for algorithms that are not given one
        explicitly (priorities, conflict tie-breaks).
    backend:
        Array backend for the neighborhood primitives — an
        :class:`~repro.engine.backend.ArrayBackend` instance or a name
        (``"auto"``/``"numpy"``/``"chunked"``).
    counters:
        Run-level profiling sink; every executor in the context
        aggregates into it in addition to its own per-run window.
    plans:
        Execution-plan cache shared by every executor in the context.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; when attached, the
        engine, runtime simulators, scheduler, and harness emit typed
        :class:`~repro.obs.events.TraceEvent` records through it. Most
        callers use :meth:`enable_tracing` instead of building one.
    trace:
        Deprecated legacy sink: when a list is supplied, every timed
        kernel appends a ``{name, cycles, simd_efficiency, ...}`` dict
        (adapted onto the typed sink via
        :class:`~repro.obs.sink.LegacyDictListSink`). Unbounded — new
        code should call :meth:`enable_tracing`, whose ring buffer
        retains only the newest events (see :mod:`repro.obs.sink` for
        the retention policy).
    """

    device: DeviceConfig = RADEON_HD_7950
    memory: MemoryModel | None = None
    seed: int = 0
    backend: ArrayBackend | str = "auto"
    counters: ExecutionCounters = field(default_factory=ExecutionCounters)
    plans: PlanCache = field(default_factory=PlanCache)
    tracer: Tracer | None = None
    trace: list[dict] | None = None

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = MemoryModel(self.device)
        if isinstance(self.backend, str):
            self.backend = make_backend(self.backend)
        if self.trace is not None:
            legacy = LegacyDictListSink(self.trace)
            self.tracer = (
                Tracer(legacy)
                if self.tracer is None
                else Tracer(TeeSink((self.tracer.sink, legacy)))
            )

    # ------------------------------------------------------------------

    def rng(self, salt: int = 0) -> np.random.Generator:
        """A fresh deterministic generator from the context seed."""
        return np.random.default_rng(self.seed + salt)

    def executor(
        self, config: "ExecutionConfig | None" = None, **config_kwargs
    ) -> "GPUExecutor":
        """Build a :class:`GPUExecutor` bound to this context.

        Pass either a ready :class:`ExecutionConfig` or its keyword
        fields (``mapping=...``, ``schedule=...``, ...).
        """
        from ..coloring.kernels import ExecutionConfig, GPUExecutor

        if config is None:
            config = ExecutionConfig(**config_kwargs)
        elif config_kwargs:
            raise ValueError("pass either a config object or keyword fields, not both")
        return GPUExecutor(self.device, config, self.memory, context=self)

    def resolve_seed(self, seed: int | None) -> int:
        """An explicit seed wins; ``None`` falls back to the context's."""
        return self.seed if seed is None else int(seed)

    def enable_tracing(
        self,
        *,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        registry: "MetricsRegistry | None" = None,
    ) -> RingBufferSink:
        """Attach a tracer backed by a bounded ring buffer.

        Returns the :class:`~repro.obs.sink.RingBufferSink` holding the
        retained events (newest ``capacity``; see :mod:`repro.obs.sink`
        for the retention policy). Pass a
        :class:`~repro.obs.registry.MetricsRegistry` to additionally
        stream every event into per-phase aggregates that survive
        ring-buffer eviction.
        """
        ring = RingBufferSink(capacity=capacity)
        sink = ring if registry is None else TeeSink((ring, registry))
        self.tracer = Tracer(sink)
        return ring


def resolve_context(
    context: RunContext | None = None, executor: object | None = None
) -> RunContext:
    """The context an algorithm call should run under.

    Preference order: the explicitly passed ``context``, then the
    executor's own context, then a fresh default (whose backend is the
    process-wide default, so untimed runs share one thread pool).
    """
    if context is not None:
        return context
    ctx = getattr(executor, "context", None)
    if ctx is not None:
        return ctx
    return RunContext(backend=get_default_backend())

"""Execution-engine layer: run context, array backends, cached plans.

The three pieces every run is assembled from:

* :class:`~repro.engine.context.RunContext` — device, memory model,
  seed, backend, and the counter/trace sinks, threaded explicitly
  through algorithms, executor, harness, and CLI.
* :class:`~repro.engine.backend.ArrayBackend` — the swappable
  neighborhood-primitive surface (NumPy ``reduceat`` default,
  chunk-parallel thread pool for large graphs).
* :class:`~repro.engine.plan.ExecutionPlan` /
  :class:`~repro.engine.plan.PlanCache` — memoized per-iteration work
  distributions (degree partitions, chunk ranges, wavefront costs).
"""

from .backend import (
    BACKENDS,
    ArrayBackend,
    AutoBackend,
    ChunkParallelBackend,
    NumpyBackend,
    get_default_backend,
    make_backend,
    set_default_backend,
)
from .context import RunContext, resolve_context
from .plan import (
    ExecutionPlan,
    PlanCache,
    build_plan,
    coop_efficiency,
    degrees_fingerprint,
)

__all__ = [
    "BACKENDS",
    "ArrayBackend",
    "AutoBackend",
    "ChunkParallelBackend",
    "NumpyBackend",
    "get_default_backend",
    "make_backend",
    "set_default_backend",
    "RunContext",
    "resolve_context",
    "ExecutionPlan",
    "PlanCache",
    "build_plan",
    "coop_efficiency",
    "degrees_fingerprint",
]

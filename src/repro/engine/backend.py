"""Pluggable array backends for the neighborhood primitives.

The GPU algorithms' inner loops are segment reductions over CSR
neighbor lists and a vectorized first-fit (mex) kernel. Historically
those were hardwired to one NumPy ``ufunc.reduceat`` implementation in
:mod:`repro.coloring._nbr`; this module turns them into a swappable
:class:`ArrayBackend` surface so hot paths can be benchmarked and
re-implemented (chunk-parallel thread pool today; GPU arrays tomorrow)
without touching any algorithm.

Backends are interchangeable by construction: every implementation
computes each vertex's reduction in the same within-row order, so the
results are bit-identical across backends — only the wall-clock cost
differs.

* :class:`NumpyBackend` — the single-pass ``reduceat`` implementation
  (the default; fastest for small and medium graphs).
* :class:`ChunkParallelBackend` — splits the vertex range into
  contiguous chunks and reduces them on a thread pool; wins once the
  adjacency stops fitting in cache.
* :class:`AutoBackend` — per-call delegation: NumPy below a work-size
  threshold, chunk-parallel above it.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:
    from ..graphs.csr import CSRGraph

__all__ = [
    "BACKENDS",
    "ArrayBackend",
    "NumpyBackend",
    "ChunkParallelBackend",
    "AutoBackend",
    "make_backend",
    "get_default_backend",
    "set_default_backend",
]

#: Names accepted by :func:`make_backend` (and the CLI ``--backend`` flag).
BACKENDS = ("auto", "numpy", "chunked")


@runtime_checkable
class ArrayBackend(Protocol):
    """The primitive surface every backend provides.

    ``neighbor_reduce`` is the segment reduction every independent-set
    sweep is built from; ``first_fit_colors`` is the mex kernel the
    first-fit algorithms share. Implementations must be pure functions
    of their inputs (no hidden state) so results never depend on which
    backend ran them.
    """

    name: str

    def neighbor_reduce(
        self, graph: "CSRGraph", values: np.ndarray, op: np.ufunc, fill: float
    ) -> np.ndarray: ...

    def neighbor_max(self, graph: "CSRGraph", values: np.ndarray) -> np.ndarray: ...

    def neighbor_min(self, graph: "CSRGraph", values: np.ndarray) -> np.ndarray: ...

    def first_fit_colors(
        self, graph: "CSRGraph", colors: np.ndarray, vertices: np.ndarray
    ) -> np.ndarray: ...


# ----------------------------------------------------------------------
# range kernels shared by every CPU backend
# ----------------------------------------------------------------------


def _reduce_rows(
    graph: "CSRGraph",
    vals: np.ndarray,
    op: np.ufunc,
    fill: float,
    lo_v: int,
    hi_v: int,
    out: np.ndarray,
) -> None:
    """Reduce rows ``[lo_v, hi_v)`` into ``out`` (same indexing).

    Uses ``op.reduceat`` over the sliced ``indptr`` boundaries, with the
    empty-row quirk of ``reduceat`` handled explicitly: a sentinel copy
    of ``fill`` is appended so every boundary is a valid index, and rows
    with no neighbors are overwritten with ``fill`` afterwards.
    """
    indptr = graph.indptr
    base = int(indptr[lo_v])
    stop = int(indptr[hi_v])
    if stop == base:
        out[lo_v:hi_v] = fill
        return
    gathered = np.concatenate([vals[graph.indices[base:stop]], [fill]])
    starts = indptr[lo_v:hi_v] - base
    seg = op.reduceat(gathered, starts)
    # rows with no neighbors got a bogus single-element "reduction"
    seg[indptr[lo_v:hi_v] == indptr[lo_v + 1 : hi_v + 1]] = fill
    out[lo_v:hi_v] = seg


def _first_fit_rows(
    graph: "CSRGraph", cols: np.ndarray, verts: np.ndarray, lo: int, hi: int, out: np.ndarray
) -> None:
    """First-fit colors for ``verts[lo:hi]``, written to ``out[lo:hi]``.

    Vertex ``v`` of degree ``d`` gets the smallest color in ``[0, d]``
    absent from its neighborhood (pigeonhole guarantees one is free);
    negative (uncolored) neighbor entries block nothing.
    """
    sel = verts[lo:hi]
    deg = graph.degrees[sel]
    slots = deg + 1  # candidate colors 0..deg per vertex
    slot_start = np.concatenate([[0], np.cumsum(slots)])
    total = int(slot_start[-1])

    # Gather the adjacency of the requested vertices.
    starts = graph.indptr[sel]
    ends = graph.indptr[sel + 1]
    counts = ends - starts
    row_of_entry = np.repeat(np.arange(sel.size), counts)
    # flat positions of each neighbor entry in graph.indices
    if counts.sum():
        offsets = np.repeat(starts - np.concatenate([[0], np.cumsum(counts)[:-1]]), counts)
        entry_pos = np.arange(int(counts.sum()), dtype=np.int64) + offsets
        nbr_color = cols[graph.indices[entry_pos]]
    else:
        nbr_color = np.empty(0, dtype=np.int64)

    blocked = np.zeros(total, dtype=bool)
    if nbr_color.size:
        valid = (nbr_color >= 0) & (nbr_color <= deg[row_of_entry])
        blocked[slot_start[row_of_entry[valid]] + nbr_color[valid]] = True

    # mex per segment: smallest unblocked in-segment offset.
    in_seg = np.arange(total, dtype=np.int64) - np.repeat(slot_start[:-1], slots)
    candidate = np.where(blocked, np.iinfo(np.int64).max, in_seg)
    out[lo:hi] = np.minimum.reduceat(candidate, slot_start[:-1]).astype(np.int64)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------


class NumpyBackend:
    """Single-pass ``reduceat`` backend — one vectorized shot per call."""

    name = "numpy"

    # -- partitioning hooks (overridden by the chunk-parallel backend) --

    def _ranges(self, total: int) -> list[tuple[int, int]]:
        return [(0, total)]

    def _run(self, thunks: list[Callable[[], None]]) -> None:
        for thunk in thunks:
            thunk()

    # -- the primitive surface ------------------------------------------

    def neighbor_reduce(
        self, graph: "CSRGraph", values: np.ndarray, op: np.ufunc, fill: float
    ) -> np.ndarray:
        """Per-vertex ``op``-reduction of ``values`` over neighbor lists.

        ``values`` is indexed by vertex id; rows with no neighbors get
        ``fill``, which must be ``op``'s identity (−inf for max, +inf
        for min, 0 for add).
        """
        vals = np.asarray(values, dtype=np.float64)
        if vals.shape != (graph.num_vertices,):
            raise ValueError("values must have one entry per vertex")
        n = graph.num_vertices
        out = np.full(n, fill, dtype=np.float64)
        if n == 0 or graph.indices.size == 0:
            return out
        self._run(
            [
                (lambda a=a, b=b: _reduce_rows(graph, vals, op, fill, a, b, out))
                for a, b in self._ranges(n)
            ]
        )
        return out

    def neighbor_max(self, graph: "CSRGraph", values: np.ndarray) -> np.ndarray:
        """Per-vertex max of neighbor ``values`` (−inf for isolated rows)."""
        return self.neighbor_reduce(graph, values, np.maximum, -np.inf)

    def neighbor_min(self, graph: "CSRGraph", values: np.ndarray) -> np.ndarray:
        """Per-vertex min of neighbor ``values`` (+inf for isolated rows)."""
        return self.neighbor_reduce(graph, values, np.minimum, np.inf)

    def first_fit_colors(
        self, graph: "CSRGraph", colors: np.ndarray, vertices: np.ndarray
    ) -> np.ndarray:
        """Smallest color unused by any neighbor, for each given vertex."""
        cols = np.asarray(colors, dtype=np.int64)
        if cols.shape != (graph.num_vertices,):
            raise ValueError("colors must have one entry per vertex")
        verts = np.asarray(vertices, dtype=np.int64).ravel()
        if verts.size == 0:
            return np.empty(0, dtype=np.int64)
        if verts.min() < 0 or verts.max() >= graph.num_vertices:
            raise ValueError("vertex id out of range")
        out = np.empty(verts.size, dtype=np.int64)
        self._run(
            [
                (lambda a=a, b=b: _first_fit_rows(graph, cols, verts, a, b, out))
                for a, b in self._ranges(verts.size)
            ]
        )
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ChunkParallelBackend(NumpyBackend):
    """Chunked thread-pool backend for large graphs.

    The vertex range is split into contiguous chunks (one ``reduceat``
    per chunk, each over a slice of the adjacency) that run on a shared
    :class:`~concurrent.futures.ThreadPoolExecutor`. NumPy releases the
    GIL inside the gather/reduce kernels, so chunks genuinely overlap.
    Results are bit-identical to :class:`NumpyBackend` — within-row
    reduction order is unchanged, only rows are grouped differently.
    """

    name = "chunked"

    def __init__(self, num_threads: int | None = None, min_chunk: int = 16_384) -> None:
        if num_threads is not None and num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if min_chunk <= 0:
            raise ValueError("min_chunk must be positive")
        self.num_threads = num_threads or min(8, os.cpu_count() or 1)
        self.min_chunk = min_chunk
        self._pool: ThreadPoolExecutor | None = None

    def _ranges(self, total: int) -> list[tuple[int, int]]:
        per = max(self.min_chunk, -(-total // self.num_threads))
        starts = range(0, total, per)
        return [(a, min(a + per, total)) for a in starts]

    def _run(self, thunks: list[Callable[[], None]]) -> None:
        if len(thunks) <= 1:
            for thunk in thunks:
                thunk()
            return
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_threads, thread_name_prefix="repro-backend"
            )
        # list() propagates the first worker exception, if any
        list(self._pool.map(lambda thunk: thunk(), thunks))

    def __repr__(self) -> str:
        return f"ChunkParallelBackend(num_threads={self.num_threads}, min_chunk={self.min_chunk})"


class AutoBackend:
    """Per-call selection: NumPy when small, chunk-parallel when large.

    ``threshold`` is the adjacency size (directed edge count) above
    which a call is routed to the chunk-parallel backend; below it the
    thread-pool overhead exceeds the win and plain NumPy runs.
    """

    name = "auto"

    def __init__(self, threshold: int = 200_000, **chunked_kwargs) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self._small = NumpyBackend()
        self._large = ChunkParallelBackend(**chunked_kwargs)

    def _pick(self, work: int) -> NumpyBackend:
        return self._large if work >= self.threshold else self._small

    def neighbor_reduce(self, graph, values, op, fill):
        return self._pick(graph.indices.size).neighbor_reduce(graph, values, op, fill)

    def neighbor_max(self, graph, values):
        return self._pick(graph.indices.size).neighbor_max(graph, values)

    def neighbor_min(self, graph, values):
        return self._pick(graph.indices.size).neighbor_min(graph, values)

    def first_fit_colors(self, graph, colors, vertices):
        verts = np.asarray(vertices)
        return self._pick(verts.size).first_fit_colors(graph, colors, vertices)

    def __repr__(self) -> str:
        return f"AutoBackend(threshold={self.threshold})"


# ----------------------------------------------------------------------
# construction and the process-wide default
# ----------------------------------------------------------------------


def make_backend(spec: str | ArrayBackend, **kwargs) -> ArrayBackend:
    """Build a backend from a name (``auto``/``numpy``/``chunked``).

    An already-constructed backend passes through unchanged (``kwargs``
    must then be empty).
    """
    if not isinstance(spec, str):
        if kwargs:
            raise ValueError("kwargs only apply when constructing by name")
        return spec
    if spec == "numpy":
        if kwargs:
            raise ValueError("NumpyBackend takes no options")
        return NumpyBackend()
    if spec == "chunked":
        return ChunkParallelBackend(**kwargs)
    if spec == "auto":
        return AutoBackend(**kwargs)
    raise ValueError(f"unknown backend {spec!r}; known: {BACKENDS}")


_default_backend: ArrayBackend | None = None


def get_default_backend() -> ArrayBackend:
    """The process-wide backend used when no RunContext is in play."""
    global _default_backend
    if _default_backend is None:
        _default_backend = AutoBackend()
    return _default_backend


def set_default_backend(backend: str | ArrayBackend) -> ArrayBackend:
    """Replace the process-wide default; returns the previous one."""
    global _default_backend
    previous = get_default_backend()
    _default_backend = make_backend(backend)
    return previous

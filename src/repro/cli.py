"""Command-line interface — ``repro-color`` / ``python -m repro``.

Subcommands::

    repro-color suite [--scale small]          # datasets table (E1)
    repro-color color rmat --algorithm maxmin  # one timed coloring run
    repro-color color path/to/graph.mtx ...    # works on files too
    repro-color compare rmat                   # all algorithms side by side
    repro-color stats powerlaw                 # structure + layout analysis
    repro-color convert in.mtx out.col         # graph format conversion
    repro-color sweep rmat --parameter chunk_size 256 512 1024
    repro-color batch all -a maxmin,jp --jobs 4  # parallel run matrix
    repro-color trace rmat -o rmat.trace.json  # traced run -> Chrome trace
    repro-color profile rmat                   # per-phase metrics table
    repro-color check validate rmat            # invariant validators
    repro-color check races --algorithm all    # simulated-race detector
    repro-color check lint src                 # repo-specific lint pass
    repro-color check golden --write           # golden digests / drift
    repro-color check verify                   # static race/bounds verifier
    repro-color check types                    # dtype/overflow certification
    repro-color check lower --emit c           # verified lowering to C
    repro-color pipeline run report-smoke --store ci.sqlite
    repro-color report --store ci.sqlite --fail-on-regression
    repro-color db info                        # run-store table counts
    repro-color db ingest                      # backfill records.jsonl
    repro-color serve --store ci.sqlite        # coloring job server
    repro-color job submit '{"kind":"color","dataset":"rmat"}' --wait

Any suite dataset name or a graph file path is accepted wherever a graph
is expected. ``color``, ``batch`` and ``sweep`` accept ``--store PATH``
to record runs into the sqlite run database (:mod:`repro.store`);
``report`` without a graph argument diffs a store against a committed
baseline snapshot.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis.tables import format_kv, format_table
from .coloring.kernels import MAPPINGS, SCHEDULES
from .engine.backend import BACKENDS
from .engine.context import RunContext
from .gpusim.device import named_device
from .graphs.csr import CSRGraph
from .graphs.io import load_graph
from .graphs.stats import summarize
from .harness.runner import (
    CPU_ALGORITHMS,
    GPU_ALGORITHMS,
    make_executor,
    run_cpu_coloring,
    run_gpu_coloring,
)
from .harness.suite import SCALES, SUITE, build, summarize_suite

__all__ = ["main", "build_parser"]


def _version() -> str:
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def _make_context(args: argparse.Namespace) -> RunContext:
    """One RunContext per CLI invocation, from the common options."""
    return RunContext(
        device=named_device(args.device),
        seed=getattr(args, "seed", 0),
        backend=getattr(args, "backend", "auto"),
    )


def _resolve_graph(name: str, scale: str) -> tuple[CSRGraph, str]:
    """Interpret ``name`` as a suite dataset or a file path."""
    if name in SUITE:
        return build(name, scale), name
    path = Path(name)
    if path.exists():
        return load_graph(path), path.name
    raise SystemExit(
        f"error: {name!r} is neither a suite dataset ({', '.join(SUITE)}) "
        "nor an existing file"
    )


def _open_recorder(args: argparse.Namespace, *, source: str):
    """A :class:`repro.store.Recorder` on ``--store``, or ``None``."""
    store = getattr(args, "store", None)
    if not store:
        return None
    from .store import Recorder

    return Recorder(store, scale=getattr(args, "scale", ""), source=source)


def _add_store_option(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="record runs into this sqlite run database (see repro.store)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-color",
        description="GPU graph coloring on a SIMT timing simulator "
        "(reproduction of Che et al., IPDPSW 2015)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_suite = sub.add_parser("suite", help="print the dataset suite table")
    p_suite.add_argument("--scale", choices=SCALES, default="small")

    p_color = sub.add_parser("color", help="run one coloring")
    p_color.add_argument("graph", help="suite dataset name or graph file")
    p_color.add_argument(
        "--algorithm",
        "-a",
        default="maxmin",
        choices=sorted(GPU_ALGORITHMS) + sorted(CPU_ALGORITHMS),
    )
    p_color.add_argument("--mapping", choices=MAPPINGS, default="thread")
    p_color.add_argument("--schedule", choices=SCHEDULES, default="grid")
    p_color.add_argument("--device", default="hd7950")
    p_color.add_argument("--scale", choices=SCALES, default="small")
    p_color.add_argument("--seed", type=int, default=0)
    p_color.add_argument("--workgroup-size", type=int, default=256)
    p_color.add_argument("--chunk-size", type=int, default=1024)
    p_color.add_argument("--degree-threshold", type=int, default=64)
    p_color.add_argument("--sort-by-degree", action="store_true")
    p_color.add_argument(
        "--backend",
        choices=BACKENDS,
        default="auto",
        help="array backend for the neighborhood primitives",
    )
    p_color.add_argument(
        "--priority",
        choices=("random", "degree", "smallest_last"),
        default="random",
        help="priority function for maxmin/jp",
    )
    p_color.add_argument(
        "--reorder",
        choices=("none", "bfs", "rcm", "degree", "random"),
        default="none",
        help="relabel the graph before coloring",
    )
    p_color.add_argument(
        "--iterations", action="store_true", help="print the per-iteration history"
    )
    p_color.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="export a trace of the run (format from extension: "
        ".jsonl → JSONL, .csv → CSV, else Chrome trace JSON)",
    )
    p_color.add_argument(
        "--validate",
        action="store_true",
        help="run the full repro.check invariant suite post-run "
        "(CSR + coloring + scheduler/trace validators)",
    )
    _add_store_option(p_color)

    p_cmp = sub.add_parser("compare", help="all GPU algorithms side by side")
    p_cmp.add_argument("graph", help="suite dataset name or graph file")
    p_cmp.add_argument("--scale", choices=SCALES, default="small")
    p_cmp.add_argument("--device", default="hd7950")
    p_cmp.add_argument("--seed", type=int, default=0)

    p_rep = sub.add_parser(
        "report",
        help="per-run report (with a graph) or store-vs-baseline "
        "regression report (without one)",
    )
    p_rep.add_argument(
        "graph",
        nargs="?",
        default=None,
        help="suite dataset name or graph file; omit for the "
        "regression report",
    )
    p_rep.add_argument("--algorithm", "-a", default="maxmin", choices=sorted(GPU_ALGORITHMS))
    p_rep.add_argument("--mapping", choices=MAPPINGS, default="thread")
    p_rep.add_argument("--schedule", choices=SCHEDULES, default="grid")
    p_rep.add_argument("--scale", choices=SCALES, default="small")
    p_rep.add_argument("--device", default="hd7950")
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument(
        "--store",
        metavar="PATH",
        default="benchmarks/results/runs.sqlite",
        help="run database to report on (regression mode)",
    )
    p_rep.add_argument(
        "--baseline",
        metavar="PATH",
        default="benchmarks/results/baseline.json",
        help="baseline snapshot to diff against",
    )
    p_rep.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit nonzero when any metric regresses beyond its threshold",
    )
    p_rep.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot the store into --baseline instead of comparing",
    )
    p_rep.add_argument(
        "--strip-wall",
        action="store_true",
        help="drop host wall times from the written baseline "
        "(recommended for committed baselines)",
    )
    p_rep.add_argument(
        "--threshold-cycles",
        type=float,
        default=None,
        metavar="FRAC",
        help="allowed fractional cycle increase (default 0.02)",
    )
    p_rep.add_argument(
        "--threshold-colors",
        type=int,
        default=None,
        metavar="N",
        help="allowed absolute color-count increase (default 0)",
    )
    p_rep.add_argument(
        "--threshold-wall",
        type=float,
        default=None,
        metavar="FRAC",
        help="allowed fractional wall-time increase (default 1.0)",
    )
    p_rep.add_argument("--json", action="store_true", help="emit JSON to stdout")

    p_stats = sub.add_parser("stats", help="structure + layout analysis")
    p_stats.add_argument("graph", help="suite dataset name or graph file")
    p_stats.add_argument("--scale", choices=SCALES, default="small")

    p_conv = sub.add_parser("convert", help="convert between graph formats")
    p_conv.add_argument("input", help="input graph file (or suite dataset)")
    p_conv.add_argument("output", help="output path; format from extension")
    p_conv.add_argument("--scale", choices=SCALES, default="small")

    p_tune = sub.add_parser("tune", help="autotune the configuration for an input")
    p_tune.add_argument("graph", help="suite dataset name or graph file")
    p_tune.add_argument("--scale", choices=SCALES, default="small")
    p_tune.add_argument("--device", default="hd7950")
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument(
        "--run", action="store_true", help="also run maxmin under the winner"
    )

    p_trace = sub.add_parser(
        "trace", help="run one coloring with tracing on and export the events"
    )
    p_trace.add_argument("graph", help="suite dataset name or graph file")
    p_trace.add_argument(
        "--algorithm", "-a", default="maxmin", choices=sorted(GPU_ALGORITHMS)
    )
    p_trace.add_argument("--mapping", choices=MAPPINGS, default="thread")
    p_trace.add_argument(
        "--schedule",
        choices=SCHEDULES,
        default="stealing",
        help="default 'stealing' so steal events appear in the trace",
    )
    p_trace.add_argument("--scale", choices=SCALES, default="small")
    p_trace.add_argument("--device", default="hd7950")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument(
        "--output", "-o", default="trace.json", help="trace file to write"
    )
    p_trace.add_argument(
        "--format",
        choices=("auto", "chrome", "jsonl", "csv"),
        default="auto",
        help="'auto' picks from the output extension",
    )
    p_trace.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="ring-buffer capacity (newest events retained)",
    )

    p_prof = sub.add_parser(
        "profile", help="run one coloring and print per-phase metrics"
    )
    p_prof.add_argument("graph", help="suite dataset name or graph file")
    p_prof.add_argument(
        "--algorithm", "-a", default="maxmin", choices=sorted(GPU_ALGORITHMS)
    )
    p_prof.add_argument("--mapping", choices=MAPPINGS, default="thread")
    p_prof.add_argument("--schedule", choices=SCHEDULES, default="stealing")
    p_prof.add_argument("--scale", choices=SCALES, default="small")
    p_prof.add_argument("--device", default="hd7950")
    p_prof.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser("sweep", help="sweep one execution parameter")
    p_sweep.add_argument("graph", help="suite dataset name or graph file")
    p_sweep.add_argument(
        "--parameter",
        choices=("chunk_size", "degree_threshold", "workgroup_size"),
        default="chunk_size",
    )
    p_sweep.add_argument("values", nargs="+", type=int, help="parameter values")
    p_sweep.add_argument("--algorithm", "-a", default="maxmin", choices=sorted(GPU_ALGORITHMS))
    p_sweep.add_argument("--mapping", choices=MAPPINGS, default="thread")
    p_sweep.add_argument("--schedule", choices=SCHEDULES, default="stealing")
    p_sweep.add_argument("--scale", choices=SCALES, default="small")
    p_sweep.add_argument("--device", default="hd7950")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (suite datasets only; results are "
        "identical to a serial sweep)",
    )
    _add_store_option(p_sweep)

    p_batch = sub.add_parser(
        "batch", help="run an algorithm × dataset matrix, optionally in parallel"
    )
    p_batch.add_argument(
        "datasets",
        nargs="+",
        help=f"suite dataset names ({', '.join(SUITE)}), or 'all'",
    )
    p_batch.add_argument(
        "--algorithms",
        "-a",
        default="maxmin",
        help="comma-separated GPU algorithms, or 'all'",
    )
    p_batch.add_argument("--mapping", choices=MAPPINGS, default="thread")
    p_batch.add_argument("--schedule", choices=SCHEDULES, default="grid")
    p_batch.add_argument("--scale", choices=SCALES, default="small")
    p_batch.add_argument("--device", default="hd7950")
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes; rows are bit-identical for any value",
    )
    p_batch.add_argument(
        "--deep-validate",
        action="store_true",
        help="run the full repro.check invariant suite on every cell",
    )
    p_batch.add_argument(
        "--output",
        "-o",
        help="write rows to FILE (.json or .csv) in addition to the table",
    )
    _add_store_option(p_batch)

    p_pipe = sub.add_parser(
        "pipeline", help="declarative experiment pipelines (see repro.store)"
    )
    pipe_sub = p_pipe.add_subparsers(dest="pipeline_command", required=True)
    pp_list = pipe_sub.add_parser("list", help="list built-in pipelines")
    pp_list.add_argument("--json", action="store_true", help="emit JSON to stdout")
    pp_run = pipe_sub.add_parser(
        "run", help="run a pipeline (built-in name or JSON spec file)"
    )
    pp_run.add_argument("pipeline", help="built-in pipeline name or spec path")
    pp_run.add_argument(
        "--store",
        metavar="PATH",
        default="benchmarks/results/runs.sqlite",
        help="run database the cells record into",
    )
    pp_run.add_argument(
        "--scale",
        choices=SCALES,
        default=None,
        help="override the pipeline's declared scale",
    )
    pp_run.add_argument("--device", default="hd7950")
    pp_run.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes; recorded rows identical for any value",
    )
    pp_run.add_argument(
        "--deep-validate",
        action="store_true",
        help="run the full repro.check invariant suite on every cell",
    )

    p_db = sub.add_parser("db", help="inspect or backfill the run database")
    db_sub = p_db.add_subparsers(dest="db_command", required=True)
    db_common = {
        "metavar": "PATH",
        "default": "benchmarks/results/runs.sqlite",
        "help": "run database file",
    }
    d_info = db_sub.add_parser("info", help="schema version and table counts")
    d_info.add_argument("--store", **db_common)
    d_info.add_argument("--json", action="store_true", help="emit JSON to stdout")
    d_rows = db_sub.add_parser("rows", help="query recorded runs")
    d_rows.add_argument("--store", **db_common)
    d_rows.add_argument("--dataset", default=None)
    d_rows.add_argument("--algorithm", "-a", default=None)
    d_rows.add_argument("--scale", choices=SCALES, default=None)
    d_rows.add_argument("--limit", type=int, default=20)
    d_rows.add_argument("--json", action="store_true", help="emit JSON to stdout")
    d_ing = db_sub.add_parser(
        "ingest", help="import legacy records.jsonl verdicts into the store"
    )
    d_ing.add_argument("--store", **db_common)
    d_ing.add_argument(
        "--jsonl",
        metavar="PATH",
        default="benchmarks/results/records.jsonl",
        help="records.jsonl file to import",
    )
    d_ing.add_argument(
        "--git-rev",
        default="imported",
        help="git_rev tag for the imported verdicts",
    )
    d_ing.add_argument(
        "--ingest-scale",
        default="standard",
        help="scale tag for the imported verdicts",
    )

    p_check = sub.add_parser(
        "check",
        help="correctness tooling: validators, races, lint, golden, "
        "verify, types, lower",
    )
    check_sub = p_check.add_subparsers(dest="check_command", required=True)

    c_val = check_sub.add_parser(
        "validate", help="run invariant validators over coloring runs"
    )
    c_val.add_argument("graph", nargs="?", default="rmat")
    c_val.add_argument(
        "--algorithm",
        "-a",
        default="all",
        choices=["all"] + sorted(GPU_ALGORITHMS),
        help="'all' validates every GPU algorithm",
    )
    c_val.add_argument("--mapping", choices=MAPPINGS, default="thread")
    c_val.add_argument("--schedule", choices=SCHEDULES, default="stealing")
    c_val.add_argument("--scale", choices=SCALES, default="small")
    c_val.add_argument("--device", default="hd7950")
    c_val.add_argument("--seed", type=int, default=0)
    c_val.add_argument("--json", action="store_true", help="emit JSON to stdout")

    c_races = check_sub.add_parser(
        "races", help="simulated-race detector over algorithm replays"
    )
    c_races.add_argument("graph", nargs="?", default="rmat")
    c_races.add_argument(
        "--algorithm",
        "-a",
        default="all",
        help="race-scannable algorithm or 'all' (default)",
    )
    c_races.add_argument("--scale", choices=SCALES, default="small")
    c_races.add_argument("--seed", type=int, default=0)
    c_races.add_argument(
        "--wavefront-size",
        type=int,
        default=64,
        help="lanes per wavefront for access tagging",
    )
    c_races.add_argument(
        "--details", action="store_true", help="print every finding"
    )
    c_races.add_argument("--json", action="store_true", help="emit JSON to stdout")

    c_lint = check_sub.add_parser("lint", help="repo-specific AST lint pass")
    c_lint.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories (default: src)"
    )
    c_lint.add_argument(
        "--explain", action="store_true", help="print the rule catalogue and exit"
    )
    c_lint.add_argument("--json", action="store_true", help="emit JSON to stdout")

    c_gold = check_sub.add_parser(
        "golden", help="golden run digests and drift detection"
    )
    c_gold.add_argument(
        "--baseline",
        default="tests/data/golden_digests.json",
        help="baseline digest file to compare against (or write)",
    )
    c_gold.add_argument(
        "--write", action="store_true", help="(re)write the baseline instead of checking"
    )
    c_gold.add_argument("--scale", choices=SCALES, default="tiny")
    c_gold.add_argument("--seed", type=int, default=0)
    c_gold.add_argument("--json", action="store_true", help="emit JSON to stdout")

    c_flow = check_sub.add_parser(
        "flow",
        help="static dataflow analysis: divergence, coalescing, imbalance",
    )
    c_flow.add_argument(
        "--algorithm",
        "-a",
        default="all",
        choices=["all"] + sorted(GPU_ALGORITHMS),
        help="'all' analyzes every GPU algorithm's kernels",
    )
    c_flow.add_argument(
        "--graph",
        "-g",
        default=None,
        help="suite dataset or graph file: adds a static imbalance "
        "prediction per algorithm (omit for classification only)",
    )
    c_flow.add_argument("--scale", choices=SCALES, default="small")
    c_flow.add_argument(
        "--mapping",
        choices=("thread", "wavefront"),
        default="thread",
        help="which device-kernel mapping to analyze",
    )
    c_flow.add_argument("--json", action="store_true", help="emit JSON to stdout")

    c_verify = check_sub.add_parser(
        "verify",
        help="static race-freedom and memory-safety verifier over kernel specs",
    )
    c_verify.add_argument(
        "--algorithm",
        "-a",
        default="all",
        choices=["all"] + sorted(GPU_ALGORITHMS),
        help="'all' verifies every GPU algorithm's kernel specs",
    )
    c_verify.add_argument(
        "--mapping",
        choices=("thread", "wavefront"),
        default="thread",
        help="which device-kernel mapping to verify",
    )
    c_verify.add_argument(
        "--graph",
        "-g",
        default="rmat",
        help="suite dataset or graph file for the static/dynamic "
        "cross-check ('none' skips the dynamic replay)",
    )
    c_verify.add_argument("--scale", choices=SCALES, default="small")
    c_verify.add_argument("--seed", type=int, default=0)
    c_verify.add_argument(
        "--wavefront-size",
        type=int,
        default=64,
        help="lanes per wavefront for the lockstep exemption",
    )
    c_verify.add_argument("--json", action="store_true", help="emit JSON to stdout")

    c_types = check_sub.add_parser(
        "types",
        help="dtype/shape inference and integer-overflow certification "
        "of the device-kernel specs",
    )
    c_types.add_argument(
        "--kernel",
        "-k",
        default=None,
        help="certify one registered kernel (default: all)",
    )
    c_types.add_argument(
        "--wavefront-size",
        type=int,
        default=64,
        help="lanes per wavefront for the range premises",
    )
    c_types.add_argument(
        "--details", action="store_true", help="print per-value ranges"
    )
    c_types.add_argument("--json", action="store_true", help="emit JSON to stdout")

    c_lower = check_sub.add_parser(
        "lower",
        help="verified lowering of certified kernels to a typed IR "
        "with C and numba emitters (refuses uncertified kernels)",
    )
    c_lower.add_argument(
        "--kernel",
        "-k",
        default=None,
        help="lower one registered kernel (default: all)",
    )
    c_lower.add_argument(
        "--emit",
        choices=("ir", "c", "numba"),
        default="ir",
        help="what to print: the typed IR (default), the C translation "
        "unit, or the numba/python source",
    )
    c_lower.add_argument(
        "--diff",
        action="store_true",
        help="cffi-compile the emitted C and check a tiny coloring "
        "differential against the per-thread interpreter",
    )
    c_lower.add_argument(
        "--wavefront-size",
        type=int,
        default=64,
        help="lanes per wavefront for certification and launchers",
    )
    c_lower.add_argument("--json", action="store_true", help="emit JSON to stdout")

    p_serve = sub.add_parser(
        "serve", help="run the coloring job server (see repro.serve)"
    )
    p_serve.add_argument(
        "--store",
        metavar="PATH",
        default="benchmarks/results/runs.sqlite",
        help="run database holding the jobs ledger and recorded rows",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    p_serve.add_argument(
        "--port", type=int, default=8932, help="TCP port (0 picks one)"
    )
    p_serve.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="serve on this Unix domain socket instead of TCP",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, help="concurrent jobs executed"
    )
    p_serve.add_argument(
        "--job-workers",
        type=int,
        default=1,
        help="parallel cells within one job (harness worker pool size)",
    )
    p_serve.add_argument(
        "--recover",
        action="store_true",
        help="re-queue jobs left non-terminal by a previous server",
    )
    p_serve.add_argument(
        "--drain",
        action="store_true",
        help="exit once the queue is empty (pairs with --recover in CI)",
    )

    p_job = sub.add_parser(
        "job", help="client for a running job server (submit/poll/fetch)"
    )
    job_sub = p_job.add_subparsers(dest="job_command", required=True)

    def _job_common(jp: argparse.ArgumentParser) -> None:
        jp.add_argument(
            "--url",
            default="http://127.0.0.1:8932",
            help="server base URL (TCP servers)",
        )
        jp.add_argument(
            "--socket",
            metavar="PATH",
            default=None,
            help="server Unix domain socket (overrides --url)",
        )
        jp.add_argument("--json", action="store_true", help="emit JSON to stdout")

    j_sub = job_sub.add_parser("submit", help="submit a job spec")
    j_sub.add_argument(
        "spec",
        help="spec as inline JSON, @file.json, or '-' for stdin",
    )
    j_sub.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    j_sub.add_argument("--timeout", type=float, default=300.0)
    _job_common(j_sub)
    for verb, hlp in (
        ("status", "poll one job's state"),
        ("result", "fetch a finished job's rows"),
        ("cancel", "cancel a queued or running job"),
        ("restart", "re-queue a terminal job"),
    ):
        jp = job_sub.add_parser(verb, help=hlp)
        jp.add_argument("job_id")
        _job_common(jp)
    j_wait = job_sub.add_parser("wait", help="block until a job finishes")
    j_wait.add_argument("job_id")
    j_wait.add_argument("--timeout", type=float, default=300.0)
    _job_common(j_wait)
    j_list = job_sub.add_parser("list", help="list jobs, newest first")
    j_list.add_argument("--state", default=None, help="filter by state")
    j_list.add_argument("--limit", type=int, default=20)
    _job_common(j_list)
    for verb, hlp in (
        ("health", "server liveness and queue depth"),
        ("metrics", "job counters, metrics registry, store counts"),
    ):
        jp = job_sub.add_parser(verb, help=hlp)
        _job_common(jp)

    return parser


def _cmd_suite(args: argparse.Namespace) -> int:
    rows = [s.as_row() for s in summarize_suite(args.scale)]
    print(format_table(rows, title=f"dataset suite ({args.scale} scale)"))
    return 0


def _export_trace(events, path: Path, fmt: str = "auto") -> str:
    """Write events in the requested (or extension-derived) format."""
    from .obs import export_chrome_trace, export_csv, export_jsonl

    if fmt == "auto":
        fmt = {".jsonl": "jsonl", ".csv": "csv"}.get(path.suffix, "chrome")
    writer = {
        "jsonl": export_jsonl,
        "csv": export_csv,
        "chrome": export_chrome_trace,
    }[fmt]
    writer(events, path)
    return fmt


def _trace_summary(ring) -> dict[str, object]:
    """Event counts by category plus retention stats for one ring."""
    by_cat: dict[str, int] = {}
    for ev in ring:
        by_cat[ev.cat] = by_cat.get(ev.cat, 0) + 1
    row: dict[str, object] = {"events": ring.emitted, "retained": len(ring)}
    if ring.dropped:
        row["dropped (oldest)"] = ring.dropped
    row.update(sorted(by_cat.items()))
    return row


def _cmd_color(args: argparse.Namespace) -> int:
    graph, name = _resolve_graph(args.graph, args.scale)
    if args.reorder != "none":
        from .graphs import reorder as ro

        perm = {
            "bfs": ro.bfs_order,
            "rcm": ro.rcm_order,
            "degree": ro.degree_order,
            "random": lambda g: ro.random_order(g, seed=args.seed),
        }[args.reorder](graph)
        graph = graph.permute(perm)
    print(format_kv(summarize(graph, name).as_row(), title="input"))
    print()
    ring = None
    ctx = None
    if args.algorithm in CPU_ALGORITHMS:
        if args.trace:
            print("note: --trace applies to GPU runs only; ignoring")
        result = run_cpu_coloring(graph, args.algorithm)
    else:
        ctx = _make_context(args)
        # --validate wants the scheduler/trace validators too, so it
        # turns tracing on even without --trace (cycle-identical).
        ring = ctx.enable_tracing() if (args.trace or args.validate) else None
        executor = ctx.executor(
            mapping=args.mapping,
            schedule=args.schedule,
            workgroup_size=args.workgroup_size,
            chunk_size=args.chunk_size,
            degree_threshold=args.degree_threshold,
            sort_by_degree=args.sort_by_degree,
        )
        algo_kwargs = (
            {"priority": args.priority} if args.algorithm in ("maxmin", "jp") else {}
        )
        recorder = _open_recorder(args, source="cli:color")
        try:
            result = run_gpu_coloring(
                graph,
                args.algorithm,
                executor,
                seed=args.seed,
                context=ctx,
                recorder=recorder,
                dataset=name,
                scale=args.scale,
                **algo_kwargs,
            )
        finally:
            if recorder is not None:
                recorder.close()
        if ring is not None and args.trace:
            out = Path(args.trace)
            fmt = _export_trace(ring, out)
            print(
                f"trace: {len(ring)} events ({ring.dropped} dropped) -> {out} [{fmt}]"
            )
            print()
    print(format_kv(result.as_row(), title="result (validated)"))
    if args.validate:
        from .check.validators import validate_run

        report = validate_run(
            graph,
            result,
            events=ring,
            device=ctx.device if ctx is not None else None,
        )
        print()
        print(report.summary())
        if not report.ok:
            return 1
    if args.iterations and result.iterations:
        print()
        rows = [
            {
                "iter": it.index,
                "active": it.active_vertices,
                "colored": it.newly_colored,
                "cycles": round(it.cycles, 1),
                "simd_eff": round(it.simd_efficiency, 3)
                if it.simd_efficiency is not None
                else None,
            }
            for it in result.iterations
        ]
        print(format_table(rows, title="iterations"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph, name = _resolve_graph(args.graph, args.scale)
    ctx = _make_context(args)
    rows = []
    for algo in GPU_ALGORITHMS:
        result = run_gpu_coloring(
            graph, algo, ctx.executor(), seed=args.seed, context=ctx
        )
        rows.append(result.as_row())
    for algo in ("greedy", "dsatur"):
        rows.append(run_cpu_coloring(graph, algo).as_row())
    print(format_table(rows, title=f"{name}: algorithm comparison"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.graph is not None:
        from .analysis.report import run_report

        graph, name = _resolve_graph(args.graph, args.scale)
        ctx = _make_context(args)
        executor = ctx.executor(mapping=args.mapping, schedule=args.schedule)
        result = run_gpu_coloring(
            graph, args.algorithm, executor, seed=args.seed, context=ctx
        )
        print(run_report(graph, result, executor, graph_name=name))
        return 0
    return _cmd_report_regressions(args)


def _cmd_report_regressions(args: argparse.Namespace) -> int:
    """``repro report`` without a graph: diff the store vs. a baseline."""
    from .store import (
        RunStore,
        Thresholds,
        compare,
        load_baseline,
        save_baseline,
        snapshot,
    )

    store_path = Path(args.store)
    if not store_path.exists():
        raise SystemExit(
            f"error: no run database at {store_path}; record some runs "
            "first (repro pipeline run ..., repro batch --store ...)"
        )
    with RunStore(store_path) as store:
        if args.write_baseline:
            snap = snapshot(store, strip_wall=args.strip_wall)
            save_baseline(snap, args.baseline)
            print(
                f"baseline: {len(snap['runs'])} cells, "
                f"{len(snap['experiments'])} experiment verdicts -> {args.baseline}"
            )
            return 0
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            raise SystemExit(
                f"error: no baseline at {baseline_path}; create one with "
                "--write-baseline"
            )
        defaults = Thresholds()
        thresholds = Thresholds(
            cycles=(
                args.threshold_cycles
                if args.threshold_cycles is not None
                else defaults.cycles
            ),
            colors=(
                args.threshold_colors
                if args.threshold_colors is not None
                else defaults.colors
            ),
            wall=(
                args.threshold_wall
                if args.threshold_wall is not None
                else defaults.wall
            ),
        )
        report = compare(store, load_baseline(baseline_path), thresholds=thresholds)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 1 if (args.fail_on_regression and not report.ok) else 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from .store import PIPELINES, Recorder, resolve_pipeline, run_pipeline

    if args.pipeline_command == "list":
        if args.json:
            print(
                json.dumps(
                    [p.to_spec() for p in PIPELINES.values()], indent=2
                )
            )
        else:
            rows = [
                {
                    "pipeline": p.name,
                    "scale": p.scale,
                    "steps": len(p.steps),
                    "cells": len(p.jobs()),
                    "description": p.description,
                }
                for p in PIPELINES.values()
            ]
            print(format_table(rows, title="built-in pipelines"))
        return 0
    try:
        pipeline = resolve_pipeline(args.pipeline)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None
    scale = args.scale if args.scale is not None else pipeline.scale
    with Recorder(args.store, scale=scale) as recorder:
        rows = run_pipeline(
            pipeline,
            recorder,
            device=named_device(args.device),
            scale=scale,
            jobs=args.jobs,
            deep_validate=args.deep_validate,
        )
        counts = recorder.store.counts()
    workers = f", jobs={args.jobs}" if args.jobs > 1 else ""
    print(
        f"pipeline {pipeline.name}: {len(rows)} cells recorded "
        f"(scale={scale}{workers}) -> {args.store} "
        f"[{counts['runs']} runs, {counts['graphs']} graphs]"
    )
    return 0


def _cmd_db(args: argparse.Namespace) -> int:
    from .store import RunStore, ingest_jsonl, run_key

    store_path = Path(args.store)
    if args.db_command != "ingest" and not store_path.exists():
        raise SystemExit(f"error: no run database at {store_path}")
    with RunStore(store_path) as store:
        if args.db_command == "info":
            doc = {"store": str(store_path), "schema": store.schema_version()}
            doc.update(store.counts())
            if args.json:
                print(json.dumps(doc, indent=2))
            else:
                print(format_kv(doc, title="run database"))
            return 0
        if args.db_command == "rows":
            rows = store.runs(
                dataset=args.dataset,
                algorithm=args.algorithm,
                scale=args.scale,
                limit=args.limit,
            )
            if args.json:
                print(json.dumps(rows, indent=2))
                return 0
            display = [
                {
                    "key": run_key(r),
                    "cycles": round(float(r["cycles"]), 1),
                    "colors": r["colors"],
                    "iters": r["iterations"],
                    "rev": r["git_rev"],
                    "runs": r["runs_count"],
                    "source": r["source"],
                }
                for r in rows
            ]
            print(format_table(display, title=f"runs (newest {len(rows)})"))
            return 0
        # ingest
        n = ingest_jsonl(
            store, args.jsonl, git_rev=args.git_rev, scale=args.ingest_scale
        )
        counts = store.counts()
        print(
            f"ingested {n} records from {args.jsonl} -> {store_path} "
            f"[{counts['experiments']} experiment verdicts]"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .graphs import reorder as ro
    from .graphs.stats import degree_histogram

    graph, name = _resolve_graph(args.graph, args.scale)
    print(format_kv(summarize(graph, name).as_row(), title="structure"))
    print()
    hist = degree_histogram(graph)
    nz = [(d, int(c)) for d, c in enumerate(hist) if c]
    head = nz[:10]
    rows = [{"degree": d, "count": c} for d, c in head]
    if len(nz) > 10:
        rows.append({"degree": f"…{nz[-1][0]}", "count": nz[-1][1]})
    print(format_table(rows, title="degree histogram (head)"))
    print()
    layouts = {
        "natural": None,
        "bfs": ro.bfs_order(graph),
        "rcm": ro.rcm_order(graph),
        "degree": ro.degree_order(graph),
        "random": ro.random_order(graph),
    }
    rows = []
    for label, perm in layouts.items():
        g = graph if perm is None else graph.permute(perm)
        rows.append({"layout": label, "bandwidth": ro.bandwidth(g)})
    print(format_table(rows, title="layout bandwidths"))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .graphs.io import (
        write_dimacs_coloring,
        write_edge_list,
        write_matrix_market,
        write_metis,
    )

    graph, name = _resolve_graph(args.input, args.scale)
    out = Path(args.output)
    writers = {
        ".mtx": write_matrix_market,
        ".col": write_dimacs_coloring,
        ".graph": write_metis,
    }
    writer = writers.get(out.suffix, write_edge_list)
    writer(graph, out)
    print(f"wrote {name} ({graph.num_vertices} vertices, {graph.num_edges} edges) → {out}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .harness.autotune import autotune

    graph, name = _resolve_graph(args.graph, args.scale)
    device = named_device(args.device)
    ctx = _make_context(args)
    outcome = autotune(graph, device, seed=args.seed, context=ctx)
    print(format_table(outcome.scoreboard_rows(), title=f"{name}: autotune scoreboard"))
    cfg = outcome.best
    print()
    print(
        f"winner: mapping={cfg.mapping} schedule={cfg.schedule} "
        f"degree_threshold={cfg.degree_threshold} chunk_size={cfg.chunk_size}"
    )
    if args.run:
        executor = make_executor(
            device,
            mapping=cfg.mapping,
            schedule=cfg.schedule,
            degree_threshold=cfg.degree_threshold,
            chunk_size=cfg.chunk_size,
            workgroup_size=min(cfg.workgroup_size, device.max_workgroup_size),
            context=ctx,
        )
        result = run_gpu_coloring(graph, "maxmin", executor, seed=args.seed, context=ctx)
        print()
        print(format_kv(result.as_row(), title="tuned run (validated)"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import DEFAULT_TRACE_CAPACITY, MetricsRegistry

    graph, name = _resolve_graph(args.graph, args.scale)
    ctx = _make_context(args)
    registry = MetricsRegistry()
    capacity = args.capacity if args.capacity else DEFAULT_TRACE_CAPACITY
    ring = ctx.enable_tracing(capacity=capacity, registry=registry)
    executor = ctx.executor(mapping=args.mapping, schedule=args.schedule)
    result = run_gpu_coloring(
        graph, args.algorithm, executor, seed=args.seed, context=ctx
    )
    out = Path(args.output)
    fmt = _export_trace(ring, out, args.format)
    print(format_kv(result.as_row(), title=f"{name}: traced run (validated)"))
    print()
    print(format_kv(_trace_summary(ring), title=f"trace -> {out} [{fmt}]"))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs import MetricsRegistry

    graph, name = _resolve_graph(args.graph, args.scale)
    ctx = _make_context(args)
    registry = MetricsRegistry()
    ctx.enable_tracing(registry=registry)
    executor = ctx.executor(mapping=args.mapping, schedule=args.schedule)
    result = run_gpu_coloring(
        graph, args.algorithm, executor, seed=args.seed, context=ctx
    )
    print(format_kv(result.as_row(), title=f"{name}: profiled run (validated)"))
    print()
    print(
        format_table(
            registry.rows(),
            title=f"per-phase metrics ({args.algorithm}, "
            f"{args.mapping}/{args.schedule})",
        )
    )
    print()
    tot = registry.totals()
    print(
        format_kv(
            {
                "kernels": tot.kernels,
                "kernel_cycles": round(tot.kernel_cycles, 1),
                "mean_simd_eff": round(tot.mean_simd_efficiency, 3),
                "mean_cu_util": round(tot.mean_cu_utilization, 3),
                "steal_attempts": tot.steal_attempts,
                "steals_succeeded": tot.steals_succeeded,
                "steal_success_rate": round(tot.steal_success_rate, 3),
                "chunks_migrated": tot.chunks_migrated,
                "launch_fraction": round(
                    executor.counters.launch_overhead_fraction, 4
                ),
            },
            title="totals",
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    jobs = getattr(args, "jobs", 1)
    if jobs > 1 and args.graph not in SUITE:
        print(
            "note: --jobs applies to suite datasets only; sweeping serially",
            file=sys.stderr,
        )
        jobs = 1
    if jobs > 1:
        rows = _sweep_rows_parallel(args, jobs)
        name = args.graph
    else:
        graph, name = _resolve_graph(args.graph, args.scale)
        ctx = _make_context(args)
        recorder = _open_recorder(args, source="cli:sweep")
        rows = []
        for value in args.values:
            kwargs = {args.parameter: value}
            if args.parameter == "workgroup_size":
                kwargs["chunk_size"] = max(256, value)
            executor = ctx.executor(
                mapping=args.mapping, schedule=args.schedule, **kwargs
            )
            result = run_gpu_coloring(
                graph,
                args.algorithm,
                executor,
                seed=args.seed,
                context=ctx,
                recorder=recorder,
                dataset=name,
                scale=args.scale,
            )
            rows.append(
                {
                    args.parameter: value,
                    "time_ms": round(result.time_ms, 4),
                    "colors": result.num_colors,
                    "iterations": result.num_iterations,
                }
            )
        if recorder is not None:
            recorder.close()
    print(
        format_table(
            rows,
            title=f"{name}: {args.algorithm} ({args.mapping}/{args.schedule}) "
            f"sweep over {args.parameter}",
        )
    )
    return 0


def _sweep_rows_parallel(args: argparse.Namespace, jobs: int) -> list[dict]:
    """Sweep points as self-contained batch cells across worker processes."""
    from .harness.batch import BatchJob, run_batch

    cells = []
    for value in args.values:
        config = {args.parameter: value}
        if args.parameter == "workgroup_size":
            config["chunk_size"] = max(256, value)
        cells.append(
            BatchJob(
                dataset=args.graph,
                algorithm=args.algorithm,
                mapping=args.mapping,
                schedule=args.schedule,
                seed=args.seed,
                config=config,
                label=f"{args.graph}:{args.parameter}={value}",
            )
        )
    recorder = _open_recorder(args, source="cli:sweep")
    try:
        batch_rows = run_batch(
            cells,
            device=named_device(args.device),
            scale=args.scale,
            parallel_jobs=jobs,
            recorder=recorder,
        )
    finally:
        if recorder is not None:
            recorder.close()
    return [
        {
            args.parameter: value,
            "time_ms": round(float(row["time_ms"]), 4),
            "colors": row["colors"],
            "iterations": row["iterations"],
        }
        for value, row in zip(args.values, batch_rows, strict=True)
    ]


def _cmd_batch(args: argparse.Namespace) -> int:
    from .harness.batch import BatchJob, run_batch, save_rows_csv, save_rows_json

    datasets = list(SUITE) if args.datasets == ["all"] else args.datasets
    for name in datasets:
        if name not in SUITE:
            raise SystemExit(
                f"error: {name!r} is not a suite dataset ({', '.join(SUITE)})"
            )
    if args.algorithms == "all":
        algorithms = sorted(GPU_ALGORITHMS)
    else:
        algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    for algo in algorithms:
        if algo not in GPU_ALGORITHMS:
            raise SystemExit(
                f"error: {algo!r} is not a GPU algorithm "
                f"({', '.join(sorted(GPU_ALGORITHMS))})"
            )
    jobs = [
        BatchJob(
            dataset=ds,
            algorithm=algo,
            mapping=args.mapping,
            schedule=args.schedule,
            seed=args.seed,
        )
        for ds in datasets
        for algo in algorithms
    ]
    recorder = _open_recorder(args, source="cli:batch")
    try:
        rows = run_batch(
            jobs,
            device=named_device(args.device),
            scale=args.scale,
            deep_validate=args.deep_validate,
            parallel_jobs=args.jobs,
            recorder=recorder,
        )
    finally:
        if recorder is not None:
            recorder.close()
    display = [
        {
            "job": r["job"],
            "colors": r["colors"],
            "iters": r["iterations"],
            "cycles": round(float(r["cycles"]), 1),
            "time_ms": round(float(r["time_ms"]), 4),
            "simd_eff": round(float(r["simd_eff"]), 3),
        }
        for r in rows
    ]
    workers = f", jobs={args.jobs}" if args.jobs > 1 else ""
    print(
        format_table(
            display,
            title=f"batch: {len(rows)} cells (scale={args.scale}{workers})",
        )
    )
    if args.output:
        out = Path(args.output)
        if out.suffix == ".csv":
            save_rows_csv(rows, out)
        else:
            save_rows_json(rows, out)
        print(f"\nrows -> {out}")
    return 0


def _print_envelope(
    command: str,
    ok: bool,
    items: list[dict[str, object]],
    **extras: object,
) -> None:
    """Emit the unified ``repro check`` JSON envelope.

    Every check subcommand's ``--json`` output has the same shape:
    ``{"command": "check.<sub>", "ok": bool, "items": [...]}`` where
    each item carries its subject key (``rule`` / ``kernel`` /
    ``algorithm`` / ``cell``), a ``verdicts`` mapping, and an
    ``issues`` list (empty when clean); extras ride at the top level.
    """
    doc: dict[str, object] = {"command": f"check.{command}", "ok": ok}
    doc.update(extras)
    doc["items"] = items
    print(json.dumps(doc, indent=2))


def _cmd_check_validate(args: argparse.Namespace) -> int:
    from .check.validators import validate_run

    graph, name = _resolve_graph(args.graph, args.scale)
    algorithms = sorted(GPU_ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    rows = []
    items: list[dict[str, object]] = []
    failed = 0
    for algo in algorithms:
        ctx = _make_context(args)
        ring = ctx.enable_tracing()
        executor = ctx.executor(mapping=args.mapping, schedule=args.schedule)
        result = run_gpu_coloring(graph, algo, executor, seed=args.seed, context=ctx)
        report = validate_run(graph, result, events=ring, device=ctx.device)
        rows.append(
            {
                "algorithm": algo,
                "colors": result.num_colors,
                "checks": report.checks_run,
                "errors": len(report.errors),
                "warnings": len(report.warnings),
                "status": "ok" if report.ok else "FAILED",
            }
        )
        items.append(
            {
                "algorithm": algo,
                "verdicts": {"validation": "ok" if report.ok else "failed"},
                "issues": [str(e) for e in report.errors],
                "detail": {
                    "colors": result.num_colors,
                    "checks": report.checks_run,
                    "warnings": len(report.warnings),
                },
            }
        )
        if not report.ok:
            failed += 1
            if not args.json:
                print(report.summary())
                print()
    if args.json:
        _print_envelope(
            "validate",
            failed == 0,
            items,
            graph=name,
            mapping=args.mapping,
            schedule=args.schedule,
            seed=args.seed,
        )
    else:
        print(
            format_table(
                rows,
                title=f"{name}: invariant validation "
                f"({args.mapping}/{args.schedule}, seed {args.seed})",
            )
        )
    return 1 if failed else 0


def _cmd_check_races(args: argparse.Namespace) -> int:
    from .check.races import RACE_SCANNERS, scan_algorithm_races

    graph, name = _resolve_graph(args.graph, args.scale)
    if args.algorithm == "all":
        algorithms = sorted(RACE_SCANNERS)
    elif args.algorithm in RACE_SCANNERS:
        algorithms = [args.algorithm]
    else:
        raise SystemExit(
            f"error: no race scanner for {args.algorithm!r}; "
            f"known: {', '.join(sorted(RACE_SCANNERS))} or 'all'"
        )
    failed = 0
    items: list[dict[str, object]] = []
    for algo in algorithms:
        scan = scan_algorithm_races(
            graph,
            algo,
            seed=args.seed,
            wavefront_size=args.wavefront_size,
        )
        if args.json:
            items.append(
                {
                    "algorithm": scan.algorithm,
                    "verdicts": {
                        "races": "clean" if scan.ok else "unexpected-races"
                    },
                    "issues": [f.describe() for f in scan.unexpected[:20]],
                    "detail": {
                        "findings": len(scan.findings),
                        "unexpected": len(scan.unexpected),
                        "racy_arrays": scan.racy_arrays,
                        "total_accesses": scan.total_accesses,
                    },
                }
            )
        else:
            print(f"{name}: {scan.summary()}")
            if args.details:
                for f in scan.findings:
                    print(f"    {f.describe()}")
            if scan.truncated:
                print(f"    (per-array finding cap hit; omitted: {scan.truncated})")
        if not scan.ok:
            failed += 1
    if args.json:
        _print_envelope(
            "races", failed == 0, items, graph=name, seed=args.seed
        )
    return 1 if failed else 0


def _cmd_check_lint(args: argparse.Namespace) -> int:
    from .check.lint import RULES, lint_paths

    if args.explain:
        if args.json:
            _print_envelope(
                "lint",
                True,
                [
                    {
                        "rule": rule,
                        "verdicts": {"lint": "documented"},
                        "issues": [],
                        "detail": {"description": desc},
                    }
                    for rule, desc in sorted(RULES.items())
                ],
                explain=True,
            )
        else:
            for rule, desc in sorted(RULES.items()):
                print(f"{rule}: {desc}")
        return 0
    violations = lint_paths(tuple(args.paths))
    n_files = sum(
        len(list(Path(p).rglob("*.py"))) if Path(p).is_dir() else 1
        for p in args.paths
    )
    if args.json:
        by_rule: dict[str, list[str]] = {rule: [] for rule in sorted(RULES)}
        for v in violations:
            by_rule.setdefault(v.rule, []).append(str(v))
        _print_envelope(
            "lint",
            not violations,
            [
                {
                    "rule": rule,
                    "verdicts": {"lint": "clean" if not found else "violated"},
                    "issues": found,
                }
                for rule, found in by_rule.items()
            ],
            files=n_files,
        )
        return 1 if violations else 0
    for v in violations:
        print(v)
    status = "clean" if not violations else f"{len(violations)} violations"
    print(f"repro lint: {n_files} files, {status}")
    return 1 if violations else 0


def _cmd_check_golden(args: argparse.Namespace) -> int:
    from .check.determinism import (
        check_drift,
        golden_digests,
        load_golden,
        save_golden,
    )

    current = golden_digests(scale=args.scale, seed=args.seed)
    baseline_path = Path(args.baseline)
    if args.write:
        save_golden(current, baseline_path)
        print(f"wrote {len(current)} golden digests -> {baseline_path}")
        return 0
    if not baseline_path.exists():
        raise SystemExit(
            f"error: no baseline at {baseline_path}; create one with --write"
        )
    report = check_drift(load_golden(baseline_path), current)
    if args.json:
        items: list[dict[str, object]] = []
        flagged = set(report.drifted) | set(report.missing) | set(report.extra)
        for d in current:
            if d.key not in flagged:
                items.append(
                    {"cell": d.key, "verdicts": {"golden": "matched"}, "issues": []}
                )
        for key, diffs in sorted(report.drifted.items()):
            items.append(
                {"cell": key, "verdicts": {"golden": "drifted"}, "issues": diffs}
            )
        for key in report.missing:
            items.append(
                {
                    "cell": key,
                    "verdicts": {"golden": "missing"},
                    "issues": ["in baseline but not in current run"],
                }
            )
        for key in report.extra:
            items.append(
                {
                    "cell": key,
                    "verdicts": {"golden": "new"},
                    "issues": ["in current run but not in baseline"],
                }
            )
        _print_envelope(
            "golden",
            report.ok,
            items,
            matched=report.matched,
            drifted=len(report.drifted),
            missing=len(report.missing),
            extra=len(report.extra),
        )
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_check_flow(args: argparse.Namespace) -> int:
    from .check.flow import analyze_algorithm, predict_imbalance

    algorithms = (
        sorted(GPU_ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    )
    graph = graph_name = None
    if args.graph is not None:
        graph, graph_name = _resolve_graph(args.graph, args.scale)

    payload = []
    unknown = 0
    for algo in algorithms:
        try:
            report = analyze_algorithm(algo, mapping=args.mapping)
        except KeyError:
            # not every algorithm has kernels under every mapping
            if not args.json:
                print(f"{algo}: no {args.mapping}-mapping kernels (skipped)")
            continue
        entry = report.to_dict()
        unknown += len(report.unknown_branches)
        if graph is not None:
            pred = predict_imbalance(algo, graph.degrees, mapping=args.mapping)
            entry["prediction"] = pred.to_dict()
        payload.append((report, entry))

    if args.json:
        items = [
            {
                "algorithm": report.algorithm,
                "verdicts": {
                    "flow": "ok" if not report.unknown_branches else "unknown-variance"
                },
                "issues": [
                    f"L{b.line}: unknown-variance {b.kind}: {b.source}"
                    for b in report.unknown_branches
                ],
                "detail": entry,
            }
            for report, entry in payload
        ]
        extras: dict[str, object] = {
            "mapping": args.mapping,
            "unknown_branches": unknown,
        }
        if graph_name is not None:
            extras["graph"] = graph_name
            extras["scale"] = args.scale
        _print_envelope("flow", unknown == 0, items, **extras)
        return 1 if unknown else 0

    for report, entry in payload:
        print(f"flow:{report.algorithm} ({args.mapping} mapping)")
        for k in report.kernels:
            s = k.to_dict()["summary"]
            print(
                f"  {k.kernel}: {s['num_branches']} branches "
                f"({s['divergent_branches']} divergent, "
                f"{s['unknown_branches']} unknown), "
                f"{s['num_loops']} loops ({s['divergent_loops']} divergent), "
                f"{s['coalesced']}/{s['global_accesses']} global accesses "
                f"coalesced, {s['scattered']} scattered"
            )
            for lp in k.divergent_loops:
                print(f"    divergent loop L{lp.line}: {lp.source}")
            for w in k.warnings:
                print(f"    warning: {w}")
        pred_entry = entry.get("prediction")
        if pred_entry is not None:
            print(
                f"  predicted on {graph_name}: "
                f"imbalance {pred_entry['imbalance_factor']:.2f}, "
                f"SIMD efficiency {pred_entry['simd_efficiency']:.3f}, "
                f"wavefront CV {pred_entry['wavefront_cv']:.2f}"
            )
    status = "ok" if unknown == 0 else f"{unknown} unknown-variance branches"
    print(f"repro flow: {len(payload)} algorithms analyzed, {status}")
    return 1 if unknown else 0


def _cmd_check_verify(args: argparse.Namespace) -> int:
    from .check.flow.memsafe import cross_check, verify_algorithm

    algorithms = (
        sorted(GPU_ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    )
    reports = []
    for algo in algorithms:
        try:
            report = verify_algorithm(
                algo, mapping=args.mapping, wavefront_size=args.wavefront_size
            )
        except KeyError:
            # not every algorithm has kernels under every mapping
            if not args.json:
                print(f"{algo}: no {args.mapping}-mapping kernels (skipped)")
            continue
        reports.append(report)

    # the dynamic scanners replay the thread-mapped semantics, so the
    # cross-check only applies under that mapping
    rows = graph_name = None
    if args.graph != "none" and args.mapping == "thread":
        from .check.races import RACE_SCANNERS

        scannable = tuple(
            a for a in (r.algorithm for r in reports) if a in RACE_SCANNERS
        )
        if scannable:
            graph, graph_name = _resolve_graph(args.graph, args.scale)
            rows = cross_check(
                graph,
                algorithms=scannable,
                seed=args.seed,
                wavefront_size=args.wavefront_size,
            )

    failed = sum(1 for r in reports if not r.ok)
    disagree = sum(1 for row in rows or [] if not row.agree)
    ok = not failed and not disagree

    if args.json:
        items = []
        for r in reports:
            issues = [
                f"unexpected may-race on {arr}" for arr in r.unexpected
            ]
            issues += [
                f"expected race not derived on {arr}"
                for arr in r.unproven_expected
            ]
            issues += [s.describe() for s in r.unproven_bounds]
            items.append(
                {
                    "algorithm": r.algorithm,
                    "verdicts": {"memsafe": "ok" if r.ok else "failed"},
                    "issues": issues,
                    "detail": r.to_dict(),
                }
            )
        extras: dict[str, object] = {"mapping": args.mapping}
        if rows is not None:
            extras["graph"] = graph_name
            extras["seed"] = args.seed
            extras["cross_check"] = [row.to_dict() for row in rows]
        _print_envelope("verify", ok, items, **extras)
        return 0 if ok else 1

    kernel_rows = []
    seen: set[str] = set()
    for r in reports:
        for k in r.kernels:
            if k.kernel in seen:
                continue
            seen.add(k.kernel)
            kernel_rows.append(
                {
                    "kernel": k.kernel,
                    "grid": k.grid,
                    "accesses": len(k.sites),
                    "in_bounds": len(k.sites) - len(k.unproven),
                    "status": "proven" if k.bounds_ok else "UNPROVEN",
                }
            )
    if kernel_rows:
        print(
            format_table(
                kernel_rows,
                title=f"kernel bounds proofs ({args.mapping} mapping)",
            )
        )
        print()
    for r in reports:
        print(r.summary())
    if rows is not None:
        print()
        print(f"cross-check on {graph_name} (seed {args.seed}):")
        for row in rows:
            status = "agree" if row.agree else "DISAGREE"
            print(
                f"  {row.algorithm}: static may-race "
                f"{list(row.static_may_race) or '[]'} vs dynamic "
                f"{list(row.dynamic_racy) or '[]'} "
                f"({row.dynamic_findings} findings) — {status}"
            )
    problems = []
    if failed:
        problems.append(f"{failed} algorithms FAILED")
    if disagree:
        problems.append(f"{disagree} cross-check disagreements")
    print(
        f"repro verify: {len(reports)} algorithms, "
        f"{'ok' if ok else '; '.join(problems)}"
    )
    return 0 if ok else 1


def _check_kernels(kernel: str | None) -> list:
    from .coloring.device_kernels import DEVICE_KERNELS

    if kernel is None:
        return list(DEVICE_KERNELS.values())
    if kernel not in DEVICE_KERNELS:
        raise SystemExit(
            f"error: no registered kernel {kernel!r}; "
            f"known: {', '.join(sorted(DEVICE_KERNELS))}"
        )
    return [DEVICE_KERNELS[kernel]]


def _cmd_check_types(args: argparse.Namespace) -> int:
    from .check.flow.lower import certificate_for

    kernels = _check_kernels(args.kernel)
    items: list[dict[str, object]] = []
    failed = 0
    for kernel in kernels:
        cert = certificate_for(kernel, wavefront_size=args.wavefront_size)
        tr, ov = cert.types, cert.overflow
        clean = tr.ok and ov.ok
        if not clean:
            failed += 1
        if args.json:
            items.append(
                {
                    "kernel": kernel.name,
                    "verdicts": {
                        "types": "ok" if tr.ok else "rejected",
                        "overflow": ov.verdict if ov.ok else "rejected",
                    },
                    "issues": [f"L{i.line}: {i.message}" for i in tr.issues]
                    + list(ov.issues),
                    "detail": {
                        "types": tr.to_dict(),
                        "overflow": ov.to_dict(),
                    },
                }
            )
            continue
        if args.details:
            print(tr.summary())
            print(ov.summary())
        else:
            print(tr.summary().splitlines()[0])
            print(ov.summary().splitlines()[0])
    if args.json:
        _print_envelope(
            "types",
            failed == 0,
            items,
            wavefront_size=args.wavefront_size,
        )
        return 1 if failed else 0
    status = "all certified" if failed == 0 else f"{failed} kernels REJECTED"
    print(f"repro types: {len(kernels)} kernels, {status}")
    return 1 if failed else 0


def _cmd_check_lower(args: argparse.Namespace) -> int:
    from .check.flow.lower import (
        LoweringRefused,
        certificate_for,
        emit_c,
        emit_python,
        lower_kernel,
        render_ir,
    )

    kernels = _check_kernels(args.kernel)
    items: list[dict[str, object]] = []
    irs = []
    failed = 0
    for kernel in kernels:
        cert = certificate_for(kernel, wavefront_size=args.wavefront_size)
        entry: dict[str, object] = {
            "kernel": kernel.name,
            "verdicts": cert.verdicts(),
            "issues": list(cert.reasons),
        }
        if cert.ok:
            try:
                irs.append(lower_kernel(kernel, cert))
            except LoweringRefused as exc:
                entry["issues"] = list(entry["issues"]) + [str(exc)]  # type: ignore[operator]
                failed += 1
        else:
            failed += 1
            if not args.json:
                print(f"lower:{kernel.name} — REFUSED")
                for reason in cert.reasons:
                    print(f"    {reason}")
        items.append(entry)

    if not args.json and irs:
        if args.emit == "c":
            source, _ = emit_c(irs)
            print(source)
        elif args.emit == "numba":
            print(emit_python(irs))
        else:
            for ir in irs:
                print(render_ir(ir))
                print()

    diff_rows: list[dict[str, object]] = []
    diff_failed = 0
    if args.diff and not failed:
        import numpy as np

        from .check.flow.lower import compile_c
        from .coloring.interp import INTERP_ALGORITHMS, ThreadLauncher, run_coloring
        from .harness.suite import build

        if args.kernel is not None:
            raise SystemExit("error: --diff needs the full kernel set (drop -k)")
        compiled = compile_c(wavefront_size=args.wavefront_size)
        graph = build("rmat", scale="tiny")
        reference = ThreadLauncher()
        for algo in INTERP_ALGORITHMS:
            a = run_coloring(graph, algo, reference)
            b = run_coloring(graph, algo, compiled)
            same = bool(np.array_equal(a, b))
            diff_rows.append(
                {"algorithm": algo, "identical": same, "colors": int(a.max()) + 1}
            )
            if not same:
                diff_failed += 1
            if not args.json:
                status = "identical" if same else "MISMATCH"
                print(f"diff:{algo} — compiled C vs interpreter: {status}")

    ok = failed == 0 and diff_failed == 0
    if args.json:
        extras: dict[str, object] = {
            "emit": args.emit,
            "wavefront_size": args.wavefront_size,
        }
        if args.diff:
            extras["diff"] = diff_rows
        _print_envelope("lower", ok, items, **extras)
        return 0 if ok else 1
    status = "ok" if ok else f"{failed} refused, {diff_failed} diff mismatches"
    print(f"repro lower: {len(kernels)} kernels, {status}")
    return 0 if ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    handlers = {
        "validate": _cmd_check_validate,
        "races": _cmd_check_races,
        "lint": _cmd_check_lint,
        "golden": _cmd_check_golden,
        "flow": _cmd_check_flow,
        "verify": _cmd_check_verify,
        "types": _cmd_check_types,
        "lower": _cmd_check_lower,
    }
    return handlers[args.check_command](args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .serve import ServeApp, make_server, make_unix_server, run_server

    app = ServeApp(
        args.store,
        workers=args.workers,
        job_workers=args.job_workers,
        recover=args.recover,
    )
    if args.socket:
        server = make_unix_server(app, args.socket)
        where = args.socket
    else:
        server = make_server(app, args.host, args.port)
        where = f"http://{server.server_address[0]}:{server.server_address[1]}"
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    recovered = f", recovered {len(app.recovered)} job(s)" if args.recover else ""
    print(
        f"serving jobs on {where} (store {args.store}, "
        f"workers={args.workers}, job-workers={args.job_workers}{recovered})"
    )
    run_server(server, app, drain=args.drain, stop_event=stop)
    print("server stopped")
    return 0


def _job_client(args: argparse.Namespace):
    from .serve import ServeClient

    if args.socket:
        return ServeClient(socket_path=args.socket)
    return ServeClient(args.url)


def _print_job(view: dict, *, as_json: bool) -> None:
    if as_json:
        print(json.dumps(view, indent=2))
        return
    doc = {
        k: view[k]
        for k in (
            "job_id",
            "kind",
            "state",
            "cells",
            "cells_done",
            "attempts",
            "spec_digest",
        )
        if k in view
    }
    if view.get("error"):
        doc["error"] = view["error"]
    if "deduped" in view:
        doc["deduped"] = view["deduped"]
    print(format_kv(doc, title=f"job {view.get('job_id', '?')}"))


def _cmd_job(args: argparse.Namespace) -> int:
    from .serve import ServeError

    client = _job_client(args)
    try:
        if args.job_command == "submit":
            raw = args.spec
            if raw == "-":
                raw = sys.stdin.read()
            elif raw.startswith("@"):
                raw = Path(raw[1:]).read_text()
            try:
                spec = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"error: spec is not JSON: {exc}") from None
            view = client.submit(spec)
            if args.wait:
                view = client.wait(view["job_id"], timeout=args.timeout)
            _print_job(view, as_json=args.json)
            return 0
        if args.job_command == "status":
            _print_job(client.job(args.job_id), as_json=args.json)
            return 0
        if args.job_command == "wait":
            view = client.wait(args.job_id, timeout=args.timeout)
            _print_job(view, as_json=args.json)
            return 0 if view["state"] == "done" else 1
        if args.job_command == "result":
            view = client.result(args.job_id)
            if args.json:
                print(json.dumps(view, indent=2))
            else:
                rows = [
                    {
                        "dataset": r.get("dataset"),
                        "algorithm": r.get("algorithm"),
                        "cycles": round(float(r.get("cycles", 0.0)), 1),
                        "colors": r.get("colors"),
                        "source": r.get("source"),
                    }
                    for r in view["result"]
                ]
                print(
                    format_table(
                        rows, title=f"job {args.job_id} ({len(rows)} rows)"
                    )
                )
            return 0
        if args.job_command == "cancel":
            _print_job(client.cancel(args.job_id), as_json=args.json)
            return 0
        if args.job_command == "restart":
            _print_job(client.restart(args.job_id), as_json=args.json)
            return 0
        if args.job_command == "list":
            views = client.jobs(state=args.state, limit=args.limit)
            if args.json:
                print(json.dumps(views, indent=2))
            else:
                rows = [
                    {
                        "job_id": v["job_id"],
                        "kind": v["kind"],
                        "state": v["state"],
                        "cells": f"{v['cells_done']}/{v['cells']}",
                        "submitted": v["submitted_at"],
                    }
                    for v in views
                ]
                print(format_table(rows, title=f"jobs ({len(rows)})"))
            return 0
        # health / metrics
        doc = (
            client.health() if args.job_command == "health" else client.metrics()
        )
        if args.json or args.job_command == "metrics":
            print(json.dumps(doc, indent=2))
        else:
            print(format_kv(doc, title="server health"))
        return 0
    except ServeError as exc:
        raise SystemExit(f"error: {exc}") from None
    except (ConnectionError, OSError) as exc:
        raise SystemExit(f"error: cannot reach server: {exc}") from None


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "suite": _cmd_suite,
        "color": _cmd_color,
        "compare": _cmd_compare,
        "report": _cmd_report,
        "tune": _cmd_tune,
        "stats": _cmd_stats,
        "convert": _cmd_convert,
        "sweep": _cmd_sweep,
        "batch": _cmd_batch,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "check": _cmd_check,
        "pipeline": _cmd_pipeline,
        "db": _cmd_db,
        "serve": _cmd_serve,
        "job": _cmd_job,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Partitioned coloring — the multi-device extension.

To color a graph across ``P`` devices, partition the vertices into
blocks and split them into *interior* vertices (every neighbor in the
same block) and *boundary* vertices (at least one neighbor elsewhere):

* interiors of different blocks are never adjacent, so each device can
  color its interior **independently with the full palette** — perfect
  scaling, zero communication;
* the boundary subgraph is then colored centrally (speculative rounds)
  against the already-fixed interior colors.

The boundary fraction grows with the partition count — the communication
wall every distributed coloring hits — which experiment E17 quantifies.
Blocks come from slicing the BFS order (locality-aware) or raw index
ranges — see :func:`partition_blocks`.
"""

from __future__ import annotations

import numpy as np

from ..engine.context import RunContext, resolve_context
from ..graphs.csr import CSRGraph
from .base import UNCOLORED, ColoringResult, IterationRecord
from .kernels import GPUExecutor
from .speculative import speculative_rounds

__all__ = ["partitioned_coloring", "partition_blocks", "boundary_mask"]


def partition_blocks(
    graph: CSRGraph, num_partitions: int, *, method: str = "bfs"
) -> np.ndarray:
    """Block id per vertex.

    ``method="bfs"`` (default) slices the BFS visit order into equal
    pieces — blocks are connected-ish regions with small boundaries on
    meshes. ``method="range"`` slices raw vertex ids — only sensible if
    the labeling is already locality-aware (e.g. after RCM).
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    n = graph.num_vertices
    per = -(-n // num_partitions) if n else 1
    if method == "range":
        return np.arange(n, dtype=np.int64) // per
    if method == "bfs":
        from ..graphs.reorder import bfs_order

        position = bfs_order(graph)  # position[v] = BFS visit rank of v
        return position // per
    raise ValueError(f"unknown partition method {method!r}")


def boundary_mask(graph: CSRGraph, block: np.ndarray) -> np.ndarray:
    """True for vertices with a neighbor in a different block."""
    b = np.asarray(block, dtype=np.int64)
    if b.shape != (graph.num_vertices,):
        raise ValueError("block must have one entry per vertex")
    owner = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    cross = b[owner] != b[graph.indices]
    out = np.zeros(graph.num_vertices, dtype=bool)
    np.logical_or.at(out, owner[cross], True)
    return out


def partitioned_coloring(
    graph: CSRGraph,
    executor: GPUExecutor | None = None,
    *,
    num_partitions: int = 4,
    method: str = "bfs",
    seed: int | None = None,
    max_iterations: int | None = None,
    context: RunContext | None = None,
) -> ColoringResult:
    """Color ``graph`` as ``num_partitions`` devices would.

    Phase 1 (parallel across devices): each block's interior is colored
    locally — simulated time is the **max** over blocks of the local
    kernel time, since the devices run concurrently. Local coloring is
    the speculative first-fit restricted to the block's interior (any
    proper local coloring works; interiors never interact).

    Phase 2 (central): boundary vertices are colored by speculative
    rounds against the fixed interiors, on one device.

    ``extras`` records the boundary fraction and per-phase cycles.
    """
    ctx = resolve_context(context, executor)
    seed = ctx.resolve_seed(seed)
    n = graph.num_vertices
    block = partition_blocks(graph, num_partitions, method=method)
    boundary = boundary_mask(graph, block)
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    iterations: list[IterationRecord] = []

    # --- phase 1: per-block interior coloring ------------------------
    # Each device runs its own GPU-style speculative coloring over its
    # interior. Interiors of different blocks are never adjacent, so the
    # devices proceed without communication, and the simulated phase
    # time is the *max* over blocks (they run concurrently).
    interior_ids = np.flatnonzero(~boundary)
    rng = np.random.default_rng(seed)
    priorities = rng.permutation(n)
    phase1_cycles = 0.0
    num_blocks = int(block.max()) + 1 if n else 0
    for blk in range(num_blocks):
        members = interior_ids[block[interior_ids] == blk]
        if members.size == 0:
            continue
        _, blk_cycles = speculative_rounds(
            graph,
            colors,
            members,
            priorities,
            executor,
            name_prefix=f"part{blk}",
            max_iterations=max_iterations,
            context=ctx,
        )
        phase1_cycles = max(phase1_cycles, blk_cycles)
    iterations.append(
        IterationRecord(
            index=0,
            active_vertices=int(interior_ids.size),
            newly_colored=int(interior_ids.size),
            cycles=phase1_cycles,
            kernels=("interior",),
        )
    )

    # --- phase 2: boundary resolution ---------------------------------
    boundary_ids = np.flatnonzero(boundary)
    tail_iters, phase2_cycles = speculative_rounds(
        graph,
        colors,
        boundary_ids,
        priorities,
        executor,
        name_prefix="boundary",
        start_index=1,
        max_iterations=max_iterations,
        context=ctx,
    )
    iterations.extend(tail_iters)

    return ColoringResult(
        algorithm=f"partitioned-{num_partitions}",
        colors=colors,
        iterations=iterations,
        total_cycles=phase1_cycles + phase2_cycles,
        device=executor.device if executor is not None else None,
        extras={
            "num_partitions": num_partitions,
            "boundary_fraction": float(boundary.mean()) if n else 0.0,
            "phase1_cycles": phase1_cycles,
            "phase2_cycles": phase2_cycles,
        },
    )

"""Jones–Plassmann coloring — the classic parallel independent-set method.

Round ``k``: every uncolored vertex whose random priority beats all its
uncolored neighbors' joins the independent set and takes the *smallest*
color absent from its (already colored) neighborhood. Compared with the
max-min baseline it extracts one set per sweep instead of two, but the
first-fit choice packs colors tighter — the approach-comparison
experiment (E3) contrasts exactly these behaviors.
"""

from __future__ import annotations

import numpy as np

from ..engine.context import RunContext, resolve_context
from ..graphs.csr import CSRGraph
from ._nbr import first_fit_colors, neighbor_max
from .base import UNCOLORED, ColoringResult, IterationRecord
from .kernels import GPUExecutor
from .priorities import make_priorities

__all__ = ["jones_plassmann_coloring"]


def jones_plassmann_coloring(
    graph: CSRGraph,
    executor: GPUExecutor | None = None,
    *,
    seed: int | None = None,
    priority: str = "random",
    max_iterations: int | None = None,
    context: RunContext | None = None,
) -> ColoringResult:
    """Color ``graph`` with Jones–Plassmann priority rounds.

    Priorities are unique (the globally largest uncolored priority
    always wins its neighborhood, so every round makes progress and at
    most ``n`` rounds run); ``priority`` selects the function — see
    :mod:`repro.coloring.priorities`. ``context`` supplies the default
    seed and array backend when given.
    """
    ctx = resolve_context(context, executor)
    seed = ctx.resolve_seed(seed)
    backend = ctx.backend
    n = graph.num_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    priorities = make_priorities(graph, priority, seed=seed)
    degrees = graph.degrees
    iterations: list[IterationRecord] = []
    total_cycles = 0.0
    cap = max_iterations if max_iterations is not None else n + 1

    uncolored = np.ones(n, dtype=bool)
    k = 0
    while uncolored.any():
        if k >= cap:
            break
        active_ids = np.flatnonzero(uncolored)
        pr_hi = np.where(uncolored, priorities, -np.inf)
        winners = uncolored & (priorities > neighbor_max(graph, pr_hi, backend=backend))
        winner_ids = np.flatnonzero(winners)
        # Winners form an independent set among uncolored vertices, so
        # assigning all their first-fit colors at once cannot conflict.
        colors[winner_ids] = first_fit_colors(graph, colors, winner_ids, backend=backend)
        uncolored[winner_ids] = False

        cycles = 0.0
        eff = None
        if executor is not None:
            timing = executor.time_iteration(degrees[active_ids], name=f"jp_it{k}")
            cycles = timing.cycles
            eff = timing.simd_efficiency
            total_cycles += cycles
        iterations.append(
            IterationRecord(
                index=k,
                active_vertices=int(active_ids.size),
                newly_colored=int(winner_ids.size),
                cycles=cycles,
                simd_efficiency=eff,
                kernels=(f"jp_it{k}",),
            )
        )
        k += 1

    return ColoringResult(
        algorithm="jones-plassmann",
        colors=colors,
        iterations=iterations,
        total_cycles=total_cycles,
        device=executor.device if executor is not None else None,
    )

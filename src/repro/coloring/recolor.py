"""Color-reduction post-passes.

The GPU algorithms trade color count for parallelism (max-min most of
all — two color indices per sweep). These post-passes claw the quality
back after the fact, which is how production pipelines use fast parallel
colorings:

* :func:`recolor_greedy` — iterated greedy (Culberson): re-run greedy
  first-fit visiting whole color classes in a chosen class order.
  Re-coloring class-by-class can never increase the color count, and
  ``largest_first``/``reverse`` orders usually decrease it.
* :func:`balance_colors` — even out color-class sizes without adding
  colors (move vertices to the smallest legal class), which matters when
  classes become parallel sweep phases downstream.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .base import UNCOLORED, ColoringResult, num_colors_used, validate_coloring
from .maxmin import compact_colors

__all__ = ["recolor_greedy", "balance_colors", "class_sizes"]


def class_sizes(colors: np.ndarray) -> np.ndarray:
    """Size of each color class (index = color)."""
    arr = np.asarray(colors, dtype=np.int64)
    used = arr[arr != UNCOLORED]
    if used.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(used)


def _class_order(colors: np.ndarray, strategy: str, rng: np.random.Generator) -> np.ndarray:
    sizes = class_sizes(colors)
    k = sizes.size
    if strategy == "reverse":
        return np.arange(k - 1, -1, -1, dtype=np.int64)
    if strategy == "largest_first":
        return np.argsort(-sizes, kind="stable").astype(np.int64)
    if strategy == "smallest_first":
        return np.argsort(sizes, kind="stable").astype(np.int64)
    if strategy == "random":
        return rng.permutation(k).astype(np.int64)
    raise ValueError(f"unknown class-order strategy {strategy!r}")


def recolor_greedy(
    graph: CSRGraph,
    colors: np.ndarray,
    *,
    passes: int = 3,
    strategy: str = "largest_first",
    seed: int = 0,
) -> ColoringResult:
    """Iterated-greedy color reduction.

    Each pass visits vertices grouped by color class (classes ordered by
    ``strategy``) and greedily first-fit re-colors them. Because a whole
    class is independent, visiting it as a block can only merge classes,
    never split them — so the color count is non-increasing pass over
    pass (Culberson's invariant).
    """
    validate_coloring(graph, colors)
    if passes < 0:
        raise ValueError("passes must be non-negative")
    rng = np.random.default_rng(seed)
    current = compact_colors(np.asarray(colors, dtype=np.int64))
    indptr, indices = graph.indptr, graph.indices
    history = [num_colors_used(current)]

    for _ in range(passes):
        order_of_class = _class_order(current, strategy, rng)
        # visit sequence: classes in chosen order, members ascending
        rank = np.empty(order_of_class.size, dtype=np.int64)
        rank[order_of_class] = np.arange(order_of_class.size)
        visit = np.lexsort((np.arange(current.size), rank[current]))
        new = np.full(current.size, UNCOLORED, dtype=np.int64)
        forbidden = np.full(graph.max_degree + 2, -1, dtype=np.int64)
        for v in visit:
            v = int(v)
            nbr_colors = new[indices[indptr[v] : indptr[v + 1]]]
            nbr_colors = nbr_colors[nbr_colors != UNCOLORED]
            forbidden[nbr_colors] = v
            c = 0
            while forbidden[c] == v:
                c += 1
            new[v] = c
        current = compact_colors(new)
        history.append(num_colors_used(current))
        if history[-1] == history[-2]:
            break

    result = ColoringResult(
        algorithm=f"recolor-{strategy}",
        colors=current,
        extras={"colors_per_pass": history},
    )
    return result


def balance_colors(graph: CSRGraph, colors: np.ndarray, *, rounds: int = 2) -> ColoringResult:
    """Even out class sizes without increasing the color count.

    Greedily moves vertices from over-full classes to the smallest class
    legal for them. Downstream multicolor sweeps then get phases of
    near-equal parallelism.
    """
    validate_coloring(graph, colors)
    current = compact_colors(np.asarray(colors, dtype=np.int64))
    k = num_colors_used(current)
    if k == 0:
        return ColoringResult(algorithm="balance-colors", colors=current)
    indptr, indices = graph.indptr, graph.indices
    for _ in range(rounds):
        sizes = np.bincount(current, minlength=k).astype(np.int64)
        target = current.size / k
        moved = 0
        # visit over-full classes' members, largest classes first
        for v in np.argsort(-sizes[current], kind="stable"):
            v = int(v)
            c = int(current[v])
            if sizes[c] <= target:
                continue
            nbr_colors = set(current[indices[indptr[v] : indptr[v + 1]]].tolist())
            candidates = [
                d for d in range(k) if d != c and d not in nbr_colors
            ]
            if not candidates:
                continue
            best = min(candidates, key=lambda d: sizes[d])
            if sizes[best] + 1 < sizes[c]:
                sizes[c] -= 1
                sizes[best] += 1
                current[v] = best
                moved += 1
        if moved == 0:
            break
    return ColoringResult(
        algorithm="balance-colors",
        colors=current,
        extras={"final_sizes": np.bincount(current, minlength=k).tolist()},
    )

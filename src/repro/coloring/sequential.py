"""Sequential CPU colorings — the quality references.

The paper compares GPU colorings against the classic sequential greedy
family; GPU independent-set algorithms trade a few extra colors for
parallelism, and these references quantify that trade (experiment E2):

* :func:`greedy_first_fit` — scan vertices in a given order, assign the
  minimum color absent from the neighborhood.
* :func:`welsh_powell` — greedy over the largest-degree-first order.
* :func:`smallest_last` — greedy over the degeneracy (smallest-last)
  order; colors within degeneracy + 1.
* :func:`dsatur` — Brélaz's saturation-degree heuristic, usually the
  fewest colors of the family.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graphs.csr import CSRGraph
from .base import UNCOLORED, ColoringResult, IterationRecord

__all__ = [
    "greedy_first_fit",
    "welsh_powell",
    "smallest_last",
    "smallest_last_order",
    "dsatur",
    "vertex_order",
]


def vertex_order(graph: CSRGraph, order: str = "natural", *, seed: int = 0) -> np.ndarray:
    """A vertex visiting order: ``natural``, ``random``, ``largest_first``,
    or ``smallest_last``."""
    n = graph.num_vertices
    if order == "natural":
        return np.arange(n, dtype=np.int64)
    if order == "random":
        rng = np.random.default_rng(seed)
        return rng.permutation(n).astype(np.int64)
    if order == "largest_first":
        # stable sort keeps determinism among equal degrees
        return np.argsort(-graph.degrees, kind="stable").astype(np.int64)
    if order == "smallest_last":
        return smallest_last_order(graph)
    raise ValueError(f"unknown order {order!r}")


def _greedy_over(graph: CSRGraph, order: np.ndarray, algorithm: str) -> ColoringResult:
    n = graph.num_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    # 'mark' trick: forbidden[c] == v means color c is blocked for vertex v,
    # avoiding an O(n) clear per vertex.
    forbidden = np.full(graph.max_degree + 2, -1, dtype=np.int64)
    for v in order:
        v = int(v)
        nbr_colors = colors[indices[indptr[v] : indptr[v + 1]]]
        nbr_colors = nbr_colors[nbr_colors != UNCOLORED]
        forbidden[nbr_colors] = v
        c = 0
        while forbidden[c] == v:
            c += 1
        colors[v] = c
    result = ColoringResult(
        algorithm=algorithm,
        colors=colors,
        iterations=[IterationRecord(index=0, active_vertices=n, newly_colored=n)],
    )
    return result


def greedy_first_fit(
    graph: CSRGraph, *, order: str = "natural", seed: int = 0
) -> ColoringResult:
    """Greedy first-fit coloring over a chosen vertex order."""
    return _greedy_over(
        graph, vertex_order(graph, order, seed=seed), f"greedy-{order}"
    )


def welsh_powell(graph: CSRGraph) -> ColoringResult:
    """Greedy over the largest-degree-first order (Welsh–Powell)."""
    res = _greedy_over(graph, vertex_order(graph, "largest_first"), "welsh-powell")
    return res


def smallest_last_order(graph: CSRGraph) -> np.ndarray:
    """Matula's smallest-last (degeneracy) order.

    Repeatedly remove a minimum-residual-degree vertex; the coloring
    order is the reverse of removal, guaranteeing at most degeneracy + 1
    colors under greedy.
    """
    n = graph.num_vertices
    deg = graph.degrees.astype(np.int64).copy()
    removed = np.zeros(n, dtype=bool)
    heap = [(int(d), v) for v, d in enumerate(deg)]
    heapq.heapify(heap)
    removal: list[int] = []
    indptr, indices = graph.indptr, graph.indices
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != deg[v]:
            continue  # stale heap entry
        removed[v] = True
        removal.append(v)
        for w in indices[indptr[v] : indptr[v + 1]]:
            w = int(w)
            if not removed[w]:
                deg[w] -= 1
                heapq.heappush(heap, (int(deg[w]), w))
    removal.reverse()
    return np.asarray(removal, dtype=np.int64)


def smallest_last(graph: CSRGraph) -> ColoringResult:
    """Greedy over the smallest-last order (≤ degeneracy + 1 colors)."""
    return _greedy_over(graph, smallest_last_order(graph), "smallest-last")


def dsatur(graph: CSRGraph) -> ColoringResult:
    """Brélaz's DSATUR: always color the most saturated vertex next.

    Saturation = number of distinct colors in the neighborhood; ties
    break by residual degree then vertex id. Lazy-heap implementation,
    ``O((n + m) log n)`` plus the per-vertex color scans.
    """
    n = graph.num_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    if n == 0:
        return ColoringResult(algorithm="dsatur", colors=colors)
    indptr, indices = graph.indptr, graph.indices
    sat: list[set[int]] = [set() for _ in range(n)]
    deg = graph.degrees
    # max-heap via negation: (-saturation, -degree, vertex)
    heap: list[tuple[int, int, int]] = [
        (0, -int(deg[v]), v) for v in range(n)
    ]
    heapq.heapify(heap)
    colored = 0
    while colored < n:
        nsat, ndeg, v = heapq.heappop(heap)
        if colors[v] != UNCOLORED or -nsat != len(sat[v]):
            continue  # already colored or stale
        nbrs = indices[indptr[v] : indptr[v + 1]]
        c = 0
        blocked = sat[v]
        while c in blocked:
            c += 1
        colors[v] = c
        colored += 1
        for w in nbrs:
            w = int(w)
            if colors[w] == UNCOLORED and c not in sat[w]:
                sat[w].add(c)
                heapq.heappush(heap, (-len(sat[w]), -int(deg[w]), w))
    return ColoringResult(
        algorithm="dsatur",
        colors=colors,
        iterations=[IterationRecord(index=0, active_vertices=n, newly_colored=n)],
    )

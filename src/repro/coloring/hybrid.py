"""The paper's hybrid designs.

Two distinct "hybrid" ideas appear in the paper, both implemented here:

1. **Hybrid mapping** — degree-binned kernels (low-degree vertices run
   thread-per-vertex, high-degree run wavefront-per-vertex). That is a
   property of the *execution engine*, not the algorithm:
   :func:`hybrid_mapping_executor` builds the pre-configured
   :class:`~repro.coloring.kernels.GPUExecutor` and any algorithm runs
   under it unchanged.

2. **Hybrid algorithm (algorithm switch)** — run max-min while the
   active set is large (massive parallelism amortizes the sweeps), then
   switch to speculative first-fit for the tail, where few active
   vertices would otherwise pay many near-empty kernel launches.
   :func:`hybrid_switch_coloring` implements the switch.
"""

from __future__ import annotations

import numpy as np

from ..engine.context import RunContext, resolve_context
from ..gpusim.device import DeviceConfig
from ..gpusim.memory import MemoryModel
from ..graphs.csr import CSRGraph
from .base import UNCOLORED, ColoringResult
from .kernels import ExecutionConfig, GPUExecutor
from .maxmin import compact_colors, maxmin_coloring
from .speculative import speculative_rounds

__all__ = ["hybrid_mapping_executor", "hybrid_switch_coloring"]


def hybrid_mapping_executor(
    device: DeviceConfig | None = None,
    *,
    degree_threshold: int = 64,
    schedule: str = "grid",
    workgroup_size: int = 256,
    memory: MemoryModel | None = None,
    context: RunContext | None = None,
    **config_kwargs,
) -> GPUExecutor:
    """An execution engine with the degree-binned hybrid mapping.

    ``degree_threshold`` is the bin boundary: vertices with degree below
    it run one-lane-per-vertex, the rest cooperatively one wavefront
    (grid schedule) or workgroup (persistent schedules) per vertex.
    Experiment E7 sweeps this threshold. Pass a ``context`` to share its
    plan cache and run-level counters (and its device, when ``device``
    is omitted).
    """
    cfg = ExecutionConfig(
        mapping="hybrid",
        schedule=schedule,
        workgroup_size=workgroup_size,
        degree_threshold=degree_threshold,
        **config_kwargs,
    )
    if device is None and context is None:
        raise ValueError("pass a device, a context, or both")
    return GPUExecutor(device, cfg, memory, context=context)


def hybrid_switch_coloring(
    graph: CSRGraph,
    executor: GPUExecutor | None = None,
    *,
    seed: int | None = None,
    switch_fraction: float = 0.05,
    switch_below: int | None = None,
    max_iterations: int | None = None,
    context: RunContext | None = None,
) -> ColoringResult:
    """Max-min for the bulk, speculative first-fit for the tail.

    Parameters
    ----------
    switch_fraction:
        Switch when the active set drops below this fraction of ``n``
        (ignored when ``switch_below`` is given). ``0`` never switches
        (pure max-min); ``1.0`` switches immediately (pure speculative).
    switch_below:
        Absolute active-set threshold overriding ``switch_fraction``.
    context:
        Run context supplying the default seed and the array backend.
    """
    if not 0.0 <= switch_fraction <= 1.0:
        raise ValueError("switch_fraction must be in [0, 1]")
    ctx = resolve_context(context, executor)
    seed = ctx.resolve_seed(seed)
    n = graph.num_vertices
    if switch_below is not None:
        threshold = int(switch_below)
    elif switch_fraction >= 1.0:
        threshold = n + 1  # even the full vertex set is "below" → immediate
    else:
        threshold = int(np.ceil(switch_fraction * n))

    phase1 = maxmin_coloring(
        graph,
        executor,
        seed=seed,
        max_iterations=max_iterations,
        stop_when_active_below=threshold,
        compact=False,
        context=ctx,
    )
    colors = phase1.colors.copy()
    remaining = np.flatnonzero(colors == UNCOLORED)
    iterations = list(phase1.iterations)
    total_cycles = phase1.total_cycles

    if remaining.size:
        rng = np.random.default_rng(seed + 1)
        priorities = rng.permutation(n)
        tail_iters, tail_cycles = speculative_rounds(
            graph,
            colors,
            remaining,
            priorities,
            executor,
            name_prefix="switch_spec",
            start_index=len(iterations),
            max_iterations=max_iterations,
            context=ctx,
        )
        iterations.extend(tail_iters)
        total_cycles += tail_cycles

    return ColoringResult(
        algorithm="hybrid-switch",
        colors=compact_colors(colors),
        iterations=iterations,
        total_cycles=total_cycles,
        device=executor.device if executor is not None else None,
        extras={
            "switch_threshold": threshold,
            "maxmin_iterations": len(phase1.iterations),
            "tail_iterations": len(iterations) - len(phase1.iterations),
        },
    )

"""Shared coloring types: results, iteration records, validation.

Every algorithm — CPU reference or simulated GPU kernel — returns a
:class:`ColoringResult`: the colors themselves (always a *real*, checked
coloring; the simulator only adds timing on top of genuinely executed
algorithms), the per-iteration history that the paper's behavioral
figures plot, and the simulated device time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpusim.device import DeviceConfig
from ..graphs.csr import CSRGraph

__all__ = [
    "UNCOLORED",
    "InvalidColoringError",
    "validate_coloring",
    "is_valid_coloring",
    "count_conflicts",
    "conflicting_edges",
    "num_colors_used",
    "IterationRecord",
    "ColoringResult",
]

#: Sentinel color of a not-yet-colored vertex.
UNCOLORED = -1


class InvalidColoringError(ValueError):
    """Raised when a claimed coloring has adjacent same-color vertices."""


def _colors_array(graph: CSRGraph, colors: np.ndarray) -> np.ndarray:
    arr = np.asarray(colors)
    if arr.shape != (graph.num_vertices,):
        raise ValueError(
            f"colors must have shape ({graph.num_vertices},), got {arr.shape}"
        )
    return arr.astype(np.int64, copy=False)


def conflicting_edges(graph: CSRGraph, colors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Endpoints of edges whose two sides share a (non-sentinel) color."""
    arr = _colors_array(graph, colors)
    u, v = graph.edge_array()
    bad = (arr[u] == arr[v]) & (arr[u] != UNCOLORED)
    return u[bad], v[bad]


def count_conflicts(graph: CSRGraph, colors: np.ndarray) -> int:
    """Number of monochromatic edges (ignoring uncolored endpoints)."""
    u, _ = conflicting_edges(graph, colors)
    return int(u.size)


def is_valid_coloring(
    graph: CSRGraph, colors: np.ndarray, *, allow_uncolored: bool = False
) -> bool:
    """True iff ``colors`` is a proper (complete, unless allowed) coloring."""
    arr = _colors_array(graph, colors)
    if not allow_uncolored and np.any(arr == UNCOLORED):
        return False
    if np.any(arr < UNCOLORED):
        return False
    return count_conflicts(graph, arr) == 0


def validate_coloring(
    graph: CSRGraph, colors: np.ndarray, *, allow_uncolored: bool = False
) -> None:
    """Raise :class:`InvalidColoringError` unless the coloring is proper."""
    arr = _colors_array(graph, colors)
    if np.any(arr < UNCOLORED):
        raise InvalidColoringError("negative color below the UNCOLORED sentinel")
    if not allow_uncolored and np.any(arr == UNCOLORED):
        missing = int((arr == UNCOLORED).sum())
        raise InvalidColoringError(f"{missing} vertices left uncolored")
    u, v = conflicting_edges(graph, arr)
    if u.size:
        raise InvalidColoringError(
            f"{u.size} conflicting edges, e.g. ({int(u[0])}, {int(v[0])}) "
            f"both color {int(arr[u[0]])}"
        )


def num_colors_used(colors: np.ndarray) -> int:
    """Distinct non-sentinel colors in the array."""
    arr = np.asarray(colors)
    used = arr[arr != UNCOLORED]
    return int(np.unique(used).size)


@dataclass(frozen=True)
class IterationRecord:
    """One round of an iterative coloring algorithm.

    ``cycles`` covers everything the round launched (all kernels plus
    their launch overheads); 0.0 for untimed CPU references.
    """

    index: int
    active_vertices: int
    newly_colored: int
    cycles: float = 0.0
    simd_efficiency: float | None = None
    kernels: tuple[str, ...] = ()


@dataclass
class ColoringResult:
    """A finished coloring plus its (simulated) execution profile."""

    algorithm: str
    colors: np.ndarray
    iterations: list[IterationRecord] = field(default_factory=list)
    total_cycles: float = 0.0
    device: DeviceConfig | None = None
    extras: dict[str, object] = field(default_factory=dict)

    @property
    def num_colors(self) -> int:
        return num_colors_used(self.colors)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def time_ms(self) -> float:
        """Simulated device time; 0.0 for CPU references."""
        if self.device is None:
            return 0.0
        return self.device.cycles_to_ms(self.total_cycles)

    def validate(self, graph: CSRGraph) -> "ColoringResult":
        """Check the coloring is proper and complete; returns self."""
        validate_coloring(graph, self.colors)
        return self

    def as_row(self) -> dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "colors": self.num_colors,
            "iterations": self.num_iterations,
            "cycles": round(self.total_cycles, 1),
            "time_ms": round(self.time_ms, 4),
        }

    def __repr__(self) -> str:
        return (
            f"ColoringResult({self.algorithm!r}, colors={self.num_colors}, "
            f"iters={self.num_iterations}, cycles={self.total_cycles:.0f})"
        )

"""Per-thread interpreter driver: color graphs via kernel launches only.

The vectorized algorithm modules are the simulator's hosts; the
per-thread specs in :mod:`~repro.coloring.device_kernels` are what the
static analyses certify and what :mod:`repro.check.flow.lower` emits
as C. This module is the bridge that makes the certified artifact
*runnable end to end*: it drives a full coloring using nothing but
kernel launches — exactly the host loop a GPU runtime would execute —
against a pluggable launcher:

* :class:`ThreadLauncher` — the reference interpreter: runs the
  Python spec once per thread, ascending ids; wavefront kernels run
  their lanes in *descending* order, the serialization that is
  equivalent to lockstep for the reduction pattern the specs use
  (each step reads ``scratch[lane + step]``, written by a higher
  lane), the same order the spec-equivalence tests execute.
* the compiled launchers from :mod:`repro.check.flow.lower` — same
  ``launch`` protocol, kernels run as emitted C (via cffi) or
  emitted numba/python source.

Running both and comparing final colors bit-for-bit is the
differential proof that the lowering preserved semantics.

The host loops here mirror the vectorized modules' round structure
(snapshot in/out buffers, sweep until no vertex is uncolored); colors
are returned raw (not compacted), as each sweep assigned them.
"""

from __future__ import annotations

from typing import Any, Protocol

import numpy as np

from ..graphs.csr import CSRGraph
from .base import UNCOLORED
from .device_kernels import DEVICE_KERNELS
from .priorities import make_priorities

__all__ = [
    "INTERP_ALGORITHMS",
    "KernelLauncher",
    "ThreadLauncher",
    "directed_edges",
    "run_coloring",
]

#: algorithms the kernel-launch driver can run to completion.
INTERP_ALGORITHMS = (
    "maxmin",
    "jp",
    "speculative",
    "hybrid-switch",
    "edge-centric",
    "partitioned",
)

DEFAULT_WAVEFRONT_SIZE = 64


class KernelLauncher(Protocol):
    """Anything that can execute one named kernel launch."""

    def launch(self, name: str, count: int, /, **params: Any) -> None:
        """Run kernel ``name`` for ids ``0..count-1`` over ``params``."""


class ThreadLauncher:
    """Reference launcher: the Python spec, one thread at a time."""

    def launch(self, name: str, count: int, /, **params: Any) -> None:
        kernel = DEVICE_KERNELS[name]
        fn = kernel.fn
        if kernel.mapping == "wavefront":
            wavefront_size = int(params["wavefront_size"])
            for wid in range(count):
                # descending lanes == lockstep for the spec's reduction
                for lane in reversed(range(wavefront_size)):
                    fn(wid, lane, **params)
        else:
            for tid in range(count):
                fn(tid, **params)


def directed_edges(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """The edge-centric grid: one item per directed CSR entry."""
    owners = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.indptr)
    )
    return owners, graph.indices


def _require_progress(colors: np.ndarray, before: int, what: str) -> int:
    remaining = int(np.count_nonzero(colors == UNCOLORED))
    if remaining >= before:
        raise RuntimeError(f"{what}: no progress ({remaining} uncolored)")
    return remaining


def run_coloring(
    graph: CSRGraph,
    algorithm: str,
    launcher: KernelLauncher | None = None,
    *,
    seed: int = 0,
    priority: str = "random",
    mapping: str = "thread",
    wavefront_size: int = DEFAULT_WAVEFRONT_SIZE,
) -> np.ndarray:
    """Color ``graph`` end to end through kernel launches alone.

    Deterministic in (graph, algorithm, seed, priority): both the
    reference interpreter and a compiled launcher must return
    bit-identical colors. ``mapping="wavefront"`` selects the
    cooperative max-min kernel (maxmin only).
    """
    if launcher is None:
        launcher = ThreadLauncher()
    if algorithm not in INTERP_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {INTERP_ALGORITHMS}"
        )
    n = graph.num_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    if n == 0:
        return colors
    priorities = make_priorities(graph, priority, seed=seed)

    if algorithm == "maxmin":
        return _run_maxmin(
            graph, launcher, priorities, colors,
            mapping=mapping, wavefront_size=wavefront_size,
        )
    if mapping != "thread":
        raise ValueError(f"{algorithm}: only thread mapping is registered")
    if algorithm == "jp":
        return _run_jp(graph, launcher, priorities, colors)
    if algorithm == "speculative" or algorithm == "partitioned":
        # partitioned coloring's phases launch the speculative pair over
        # interior then boundary vertices; at whole-graph granularity
        # one iteration is exactly the speculative assign/detect pair.
        return _run_speculative(graph, launcher, priorities, colors)
    if algorithm == "hybrid-switch":
        return _run_hybrid(graph, launcher, priorities, colors)
    if algorithm == "edge-centric":
        return _run_edge_centric(graph, launcher, priorities, colors)
    raise AssertionError(algorithm)


def _run_maxmin(
    graph: CSRGraph,
    launcher: KernelLauncher,
    priorities: np.ndarray,
    colors: np.ndarray,
    *,
    mapping: str,
    wavefront_size: int,
) -> np.ndarray:
    n = graph.num_vertices
    remaining = int(np.count_nonzero(colors == UNCOLORED))
    scratch_max = np.zeros(wavefront_size, dtype=np.float64)
    scratch_min = np.zeros(wavefront_size, dtype=np.float64)
    round_k = 0
    while remaining:
        out = colors.copy()
        if mapping == "wavefront":
            launcher.launch(
                "maxmin_wavefront_sweep", n,
                indptr=graph.indptr, indices=graph.indices,
                priorities=priorities, colors_in=colors, colors_out=out,
                scratch_max=scratch_max, scratch_min=scratch_min,
                round_k=round_k, wavefront_size=wavefront_size,
            )
        else:
            launcher.launch(
                "maxmin_sweep", n,
                indptr=graph.indptr, indices=graph.indices,
                priorities=priorities, colors_in=colors, colors_out=out,
                round_k=round_k,
            )
        colors = out
        remaining = _require_progress(colors, remaining, f"maxmin round {round_k}")
        round_k += 1
    return colors


def _run_jp(
    graph: CSRGraph,
    launcher: KernelLauncher,
    priorities: np.ndarray,
    colors: np.ndarray,
) -> np.ndarray:
    n = graph.num_vertices
    remaining = int(np.count_nonzero(colors == UNCOLORED))
    rounds = 0
    while remaining:
        out = colors.copy()
        launcher.launch(
            "jp_sweep", n,
            indptr=graph.indptr, indices=graph.indices,
            priorities=priorities, colors_in=colors, colors_out=out,
        )
        colors = out
        remaining = _require_progress(colors, remaining, f"jp round {rounds}")
        rounds += 1
    return colors


def _speculative_iteration(
    graph: CSRGraph,
    launcher: KernelLauncher,
    priorities: np.ndarray,
    colors: np.ndarray,
) -> np.ndarray:
    n = graph.num_vertices
    assigned = colors.copy()
    launcher.launch(
        "spec_assign", n,
        indptr=graph.indptr, indices=graph.indices,
        colors_in=colors, colors_out=assigned,
    )
    resolved = assigned.copy()
    launcher.launch(
        "spec_detect", n,
        indptr=graph.indptr, indices=graph.indices,
        priorities=priorities, colors_in=assigned, colors_out=resolved,
    )
    return resolved


def _run_speculative(
    graph: CSRGraph,
    launcher: KernelLauncher,
    priorities: np.ndarray,
    colors: np.ndarray,
) -> np.ndarray:
    remaining = int(np.count_nonzero(colors == UNCOLORED))
    rounds = 0
    while remaining:
        colors = _speculative_iteration(graph, launcher, priorities, colors)
        remaining = _require_progress(colors, remaining, f"speculative round {rounds}")
        rounds += 1
    return colors


def _run_hybrid(
    graph: CSRGraph,
    launcher: KernelLauncher,
    priorities: np.ndarray,
    colors: np.ndarray,
) -> np.ndarray:
    """Max-min sweeps while the active set is large, then speculative."""
    n = graph.num_vertices
    switch_below = max(1, n // 8)
    remaining = int(np.count_nonzero(colors == UNCOLORED))
    round_k = 0
    while remaining > switch_below:
        out = colors.copy()
        launcher.launch(
            "maxmin_sweep", n,
            indptr=graph.indptr, indices=graph.indices,
            priorities=priorities, colors_in=colors, colors_out=out,
            round_k=round_k,
        )
        colors = out
        remaining = _require_progress(colors, remaining, f"hybrid round {round_k}")
        round_k += 1
    return _run_speculative(graph, launcher, priorities, colors)


def _run_edge_centric(
    graph: CSRGraph,
    launcher: KernelLauncher,
    priorities: np.ndarray,
    colors: np.ndarray,
) -> np.ndarray:
    n = graph.num_vertices
    edge_u, edge_v = directed_edges(graph)
    m = int(edge_u.shape[0])
    remaining = int(np.count_nonzero(colors == UNCOLORED))
    round_k = 0
    while remaining:
        acc_max = np.full(n, -np.inf, dtype=np.float64)
        acc_min = np.full(n, np.inf, dtype=np.float64)
        launcher.launch(
            "ec_edge_fold", m,
            edge_u=edge_u, edge_v=edge_v, priorities=priorities,
            colors_in=colors, acc_max=acc_max, acc_min=acc_min,
        )
        out = colors.copy()
        launcher.launch(
            "ec_decide", n,
            priorities=priorities, colors_in=colors, colors_out=out,
            acc_max=acc_max, acc_min=acc_min, round_k=round_k,
        )
        colors = out
        remaining = _require_progress(colors, remaining, f"edge-centric round {round_k}")
        round_k += 1
    return colors

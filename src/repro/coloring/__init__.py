"""Graph coloring algorithms — CPU references and simulated GPU kernels."""

from ._nbr import first_fit_colors, neighbor_max, neighbor_min, neighbor_reduce
from .base import (
    UNCOLORED,
    ColoringResult,
    InvalidColoringError,
    IterationRecord,
    conflicting_edges,
    count_conflicts,
    is_valid_coloring,
    num_colors_used,
    validate_coloring,
)
from .distance2 import (
    greedy_distance2,
    is_valid_distance2,
    speculative_distance2,
    two_hop_work,
    validate_distance2,
)
from .edge_centric import edge_centric_maxmin, edge_kernel_cycles_per_item
from .hybrid import hybrid_mapping_executor, hybrid_switch_coloring
from .incremental import IncrementalColoring
from .jacobian import (
    column_intersection_coloring,
    compression_ratio,
    recover_jacobian,
    seed_matrix,
)
from .jones_plassmann import jones_plassmann_coloring
from .kernels import (
    MAPPINGS,
    SCHEDULES,
    CostModel,
    ExecutionConfig,
    GPUExecutor,
    IterationTiming,
)
from .maxmin import compact_colors, maxmin_coloring
from .partitioned import boundary_mask, partition_blocks, partitioned_coloring
from .priorities import PRIORITY_KINDS, make_priorities
from .recolor import balance_colors, class_sizes, recolor_greedy
from .sequential import (
    dsatur,
    greedy_first_fit,
    smallest_last,
    smallest_last_order,
    vertex_order,
    welsh_powell,
)
from .speculative import speculative_coloring, speculative_rounds
from .windowed import window_first_fit, windowed_speculative_coloring

__all__ = [
    "first_fit_colors",
    "neighbor_max",
    "neighbor_min",
    "neighbor_reduce",
    "UNCOLORED",
    "ColoringResult",
    "InvalidColoringError",
    "IterationRecord",
    "conflicting_edges",
    "count_conflicts",
    "is_valid_coloring",
    "num_colors_used",
    "validate_coloring",
    "edge_centric_maxmin",
    "edge_kernel_cycles_per_item",
    "greedy_distance2",
    "is_valid_distance2",
    "speculative_distance2",
    "two_hop_work",
    "validate_distance2",
    "hybrid_mapping_executor",
    "hybrid_switch_coloring",
    "IncrementalColoring",
    "column_intersection_coloring",
    "compression_ratio",
    "recover_jacobian",
    "seed_matrix",
    "jones_plassmann_coloring",
    "PRIORITY_KINDS",
    "make_priorities",
    "balance_colors",
    "class_sizes",
    "recolor_greedy",
    "MAPPINGS",
    "SCHEDULES",
    "CostModel",
    "ExecutionConfig",
    "GPUExecutor",
    "IterationTiming",
    "compact_colors",
    "maxmin_coloring",
    "boundary_mask",
    "partition_blocks",
    "partitioned_coloring",
    "dsatur",
    "greedy_first_fit",
    "smallest_last",
    "smallest_last_order",
    "vertex_order",
    "welsh_powell",
    "speculative_coloring",
    "speculative_rounds",
    "window_first_fit",
    "windowed_speculative_coloring",
]

"""Distance-2 graph coloring — the standard extension of the problem.

A distance-2 coloring gives distinct colors to any two vertices within
two hops. It is the coloring used to compress Jacobian/Hessian
evaluations (columns sharing no row may share a color) and to schedule
conflict-free updates when writes touch the whole neighborhood — the
natural "future work" extension of the paper's kernels, built from the
same ingredients: speculate in parallel, detect conflicts, retry.

Both a sequential reference and a GPU-style speculative implementation
are provided; the speculative kernels run on the same execution engine,
with per-vertex work proportional to the *two-hop* neighborhood size.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .base import UNCOLORED, ColoringResult, InvalidColoringError, IterationRecord
from .kernels import GPUExecutor

__all__ = [
    "greedy_distance2",
    "speculative_distance2",
    "validate_distance2",
    "is_valid_distance2",
    "two_hop_work",
]


def two_hop_work(graph: CSRGraph) -> np.ndarray:
    """Per-vertex distance-2 scan size: ``deg(v) + Σ_{w∈N(v)} deg(w)``.

    This is the work a distance-2 kernel lane performs, and what the
    execution engine should be charged with instead of plain degrees.
    """
    deg = graph.degrees.astype(np.int64)
    if graph.indices.size == 0:
        return deg.copy()
    nbr_deg_sum = np.zeros(graph.num_vertices, dtype=np.int64)
    owner = np.repeat(np.arange(graph.num_vertices), deg)
    np.add.at(nbr_deg_sum, owner, deg[graph.indices])
    return deg + nbr_deg_sum


def _distance2_conflicts(
    graph: CSRGraph, colors: np.ndarray, priorities: np.ndarray
) -> np.ndarray:
    """Vertices that must uncolor: losers of any d≤2 monochromatic pair.

    Adjacent conflicts come from the edge list; two-hop conflicts are
    same-colored vertices sharing a *center* neighbor — found by sorting
    the adjacency entries by (center, neighbor color) and scanning runs.
    """
    losers: list[np.ndarray] = []
    # distance-1
    u, v = graph.edge_array()
    same = (colors[u] == colors[v]) & (colors[u] != UNCOLORED)
    cu, cv = u[same], v[same]
    losers.append(np.where(priorities[cu] < priorities[cv], cu, cv))

    # distance-2: group each center's colored neighbors by color
    deg = graph.degrees
    center = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), deg)
    nbr = graph.indices.astype(np.int64)
    col = colors[nbr]
    keep = col != UNCOLORED
    center, nbr, col = center[keep], nbr[keep], col[keep]
    if center.size:
        # sort by (center, color, priority) so each run's last entry is
        # its highest-priority member — the survivor
        order = np.lexsort((priorities[nbr], col, center))
        center, nbr, col = center[order], nbr[order], col[order]
        same_run = (center[1:] == center[:-1]) & (col[1:] == col[:-1])
        # every entry that is followed by a same-run entry loses
        losers.append(nbr[:-1][same_run])
    out = np.unique(np.concatenate(losers)) if losers else np.empty(0, np.int64)
    return out


def is_valid_distance2(graph: CSRGraph, colors: np.ndarray) -> bool:
    """True iff ``colors`` is a complete, proper distance-2 coloring."""
    arr = np.asarray(colors, dtype=np.int64)
    if arr.shape != (graph.num_vertices,):
        return False
    if np.any(arr < 0):
        return False
    # any conflict loser means invalid; priorities are irrelevant here
    dummy = np.arange(graph.num_vertices)
    return _distance2_conflicts(graph, arr, dummy).size == 0


def validate_distance2(graph: CSRGraph, colors: np.ndarray) -> None:
    """Raise :class:`InvalidColoringError` unless distance-2 proper."""
    if not is_valid_distance2(graph, colors):
        raise InvalidColoringError("not a proper complete distance-2 coloring")


def _d2_first_fit(graph: CSRGraph, colors: np.ndarray, vertex: int) -> int:
    """Smallest color unused within two hops of ``vertex``."""
    forbidden: set[int] = set()
    for w in graph.neighbors(vertex):
        w = int(w)
        if colors[w] != UNCOLORED:
            forbidden.add(int(colors[w]))
        for x in graph.neighbors(w):
            x = int(x)
            if x != vertex and colors[x] != UNCOLORED:
                forbidden.add(int(colors[x]))
    c = 0
    while c in forbidden:
        c += 1
    return c


def greedy_distance2(graph: CSRGraph, *, order: np.ndarray | None = None) -> ColoringResult:
    """Sequential greedy distance-2 coloring (the quality reference)."""
    n = graph.num_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    seq = np.arange(n, dtype=np.int64) if order is None else np.asarray(order)
    for v in seq:
        colors[int(v)] = _d2_first_fit(graph, colors, int(v))
    return ColoringResult(
        algorithm="greedy-distance2",
        colors=colors,
        iterations=[IterationRecord(index=0, active_vertices=n, newly_colored=n)],
    )


def speculative_distance2(
    graph: CSRGraph,
    executor: GPUExecutor | None = None,
    *,
    seed: int = 0,
    max_iterations: int | None = None,
) -> ColoringResult:
    """GPU-style speculate/resolve distance-2 coloring.

    Each round: every active vertex first-fit colors itself against its
    two-hop neighborhood snapshot (kernel 1), then all distance-≤2
    monochromatic conflicts uncolor their lower-priority member
    (kernel 2). The highest-priority vertex of any conflict always
    survives, so rounds strictly shrink.
    """
    n = graph.num_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    rng = np.random.default_rng(seed)
    priorities = rng.permutation(n)
    work = two_hop_work(graph)
    iterations: list[IterationRecord] = []
    total_cycles = 0.0
    cap = max_iterations if max_iterations is not None else n + 1

    active = np.arange(n, dtype=np.int64)
    k = 0
    while active.size:
        if k >= cap:
            break
        snapshot = colors.copy()
        for v in active:
            colors[int(v)] = _d2_first_fit(graph, snapshot, int(v))
        losers = _distance2_conflicts(graph, colors, priorities)
        # only active vertices can conflict (stable set was d2-proper and
        # actives avoided stable colors), but intersect for safety
        losers = np.intersect1d(losers, active)
        colors[losers] = UNCOLORED

        cycles = 0.0
        eff = None
        names = (f"d2_assign_it{k}", f"d2_detect_it{k}")
        if executor is not None:
            t1 = executor.time_iteration(work[active], name=names[0])
            t2 = executor.time_iteration(work[active], name=names[1])
            cycles = t1.cycles + t2.cycles
            eff = t1.simd_efficiency
            total_cycles += cycles
        iterations.append(
            IterationRecord(
                index=k,
                active_vertices=int(active.size),
                newly_colored=int(active.size - losers.size),
                cycles=cycles,
                simd_efficiency=eff,
                kernels=names,
            )
        )
        active = losers
        k += 1

    return ColoringResult(
        algorithm="speculative-distance2",
        colors=colors,
        iterations=iterations,
        total_cycles=total_cycles,
        device=executor.device if executor is not None else None,
    )

"""Edge-centric coloring kernels — uniform work items by construction.

The thread-per-vertex mapping diverges because a lane's work is its
vertex's degree. The *edge-centric* formulation sidesteps divergence
entirely: one work item per directed edge, each doing O(1) work (read
the neighbor's state, atomically fold into the owner's accumulator),
followed by an O(1)-per-vertex decision kernel. Perfect balance — but
it pays for it with atomics on every edge and a second kernel per
sweep, so it loses to vertex kernels on uniform graphs and wins on
skewed ones. That crossover is experiment E13.

The *algorithm* is exactly max-min (same priorities, same seed → the
identical coloring as :func:`repro.coloring.maxmin.maxmin_coloring`);
only the simulated kernel organization differs.
"""

from __future__ import annotations

import numpy as np

from ..engine.context import RunContext, resolve_context
from ..graphs.csr import CSRGraph
from ._nbr import neighbor_max, neighbor_min
from .base import UNCOLORED, ColoringResult, IterationRecord
from .kernels import GPUExecutor
from .maxmin import compact_colors
from .priorities import make_priorities

__all__ = ["edge_centric_maxmin", "edge_kernel_cycles_per_item"]


def edge_kernel_cycles_per_item(executor: GPUExecutor) -> float:
    """Cycles one directed-edge work item costs.

    Read the two endpoint states (scattered) plus one global atomic
    max/min fold into the owner's accumulator, plus a couple of ALU ops.
    Uniform across items — that is the whole point.
    """
    mem = executor.memory
    dev = executor.device
    return float(
        2.0 * mem.scattered_element_cycles + dev.atomic_cycles / 4.0 + 2.0 * dev.alu_cycles
    )


def _vertex_decision_cycles(executor: GPUExecutor) -> float:
    """O(1) per-vertex decision kernel (compare accumulators, write)."""
    mem = executor.memory
    dev = executor.device
    return float(4.0 * mem.scattered_element_cycles + 4.0 * dev.alu_cycles)


def edge_centric_maxmin(
    graph: CSRGraph,
    executor: GPUExecutor | None = None,
    *,
    seed: int | None = None,
    priority: str = "random",
    max_iterations: int | None = None,
    context: RunContext | None = None,
) -> ColoringResult:
    """Max-min coloring timed as edge-centric kernels.

    Per sweep: an edge kernel over every directed edge incident to an
    uncolored vertex (uniform O(1) items — zero divergence), then a
    vertex decision kernel over the active set. Produces exactly the
    coloring :func:`maxmin_coloring` produces for the same seed.
    ``context`` supplies the default seed and array backend when given.
    """
    ctx = resolve_context(context, executor)
    seed = ctx.resolve_seed(seed)
    backend = ctx.backend
    n = graph.num_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    priorities = make_priorities(graph, priority, seed=seed)
    degrees = graph.degrees
    iterations: list[IterationRecord] = []
    total_cycles = 0.0
    cap = max_iterations if max_iterations is not None else n + 1

    uncolored = np.ones(n, dtype=bool)
    k = 0
    while uncolored.any():
        if k >= cap:
            break
        active_ids = np.flatnonzero(uncolored)
        pr_hi = np.where(uncolored, priorities, -np.inf)
        pr_lo = np.where(uncolored, priorities, np.inf)
        nbr_hi = neighbor_max(graph, pr_hi, backend=backend)
        nbr_lo = neighbor_min(graph, pr_lo, backend=backend)
        is_max = uncolored & (priorities > nbr_hi)
        is_min = uncolored & (priorities < nbr_lo) & ~is_max
        colors[is_max] = 2 * k
        colors[is_min] = 2 * k + 1
        newly = int(is_max.sum() + is_min.sum())
        uncolored &= ~(is_max | is_min)

        cycles = 0.0
        eff = None
        names = (f"ec_edges_it{k}", f"ec_decide_it{k}")
        if executor is not None:
            num_edge_items = int(degrees[active_ids].sum())
            t1 = executor.time_uniform(
                num_edge_items,
                edge_kernel_cycles_per_item(executor),
                traffic_elements=2.0 * num_edge_items,
                name=names[0],
            )
            t2 = executor.time_uniform(
                int(active_ids.size),
                _vertex_decision_cycles(executor),
                traffic_elements=4.0 * active_ids.size,
                name=names[1],
            )
            cycles = t1.cycles + t2.cycles
            eff = t1.simd_efficiency
            total_cycles += cycles
        iterations.append(
            IterationRecord(
                index=k,
                active_vertices=int(active_ids.size),
                newly_colored=newly,
                cycles=cycles,
                simd_efficiency=eff,
                kernels=names,
            )
        )
        k += 1

    return ColoringResult(
        algorithm="edge-centric-maxmin",
        colors=compact_colors(colors),
        iterations=iterations,
        total_cycles=total_cycles,
        device=executor.device if executor is not None else None,
    )

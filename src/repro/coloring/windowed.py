"""Windowed speculative coloring — bounded forbidden arrays.

The practical GPU refinement of Gebremedhin–Manne: a thread cannot
afford an unbounded forbidden-color array, so each pass considers only
a *window* of ``W`` colors ``[b, b + W)``. A vertex takes the smallest
free in-window color; if its neighborhood blocks the whole window it
*defers* to the next pass (``b += W``). Small windows fit the forbidden
array in registers/LDS (higher occupancy — see
:func:`repro.gpusim.occupancy.occupancy`) at the price of extra passes
for high-degree vertices; ``window ≥ Δ + 1`` degenerates to plain
speculative coloring.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .base import UNCOLORED, ColoringResult, IterationRecord
from .kernels import GPUExecutor

__all__ = ["windowed_speculative_coloring", "window_first_fit"]


def window_first_fit(
    graph: CSRGraph,
    colors: np.ndarray,
    vertices: np.ndarray,
    base: int,
    window: int,
) -> np.ndarray:
    """Smallest free color in ``[base, base + window)`` per vertex, or −1.

    Vectorized like :func:`repro.coloring._nbr.first_fit_colors` but over
    a fixed-width window, which is exactly what a bounded forbidden
    array computes.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    verts = np.asarray(vertices, dtype=np.int64).ravel()
    if verts.size == 0:
        return np.empty(0, dtype=np.int64)
    cols = np.asarray(colors, dtype=np.int64)

    blocked = np.zeros((verts.size, window), dtype=bool)
    starts = graph.indptr[verts]
    counts = graph.indptr[verts + 1] - starts
    if counts.sum():
        row = np.repeat(np.arange(verts.size), counts)
        offsets = np.repeat(starts - np.concatenate([[0], np.cumsum(counts)[:-1]]), counts)
        entry = np.arange(int(counts.sum()), dtype=np.int64) + offsets
        nbr_color = cols[graph.indices[entry]]
        inwin = (nbr_color >= base) & (nbr_color < base + window)
        blocked[row[inwin], nbr_color[inwin] - base] = True

    free = ~blocked
    has_free = free.any(axis=1)
    first = free.argmax(axis=1)
    out = np.where(has_free, base + first, -1).astype(np.int64)
    return out


def windowed_speculative_coloring(
    graph: CSRGraph,
    executor: GPUExecutor | None = None,
    *,
    window: int = 32,
    seed: int = 0,
    max_iterations: int | None = None,
) -> ColoringResult:
    """Speculate/resolve coloring with a ``window``-bounded palette.

    Each pass: every active vertex proposes its smallest free in-window
    color (or defers); conflicts uncolor the lower-priority endpoint;
    when no active vertex can be placed in the current window any more,
    the window advances. Guaranteed to finish: a vertex of degree ``d``
    is placeable once ``base + window > d``.
    """
    n = graph.num_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    rng = np.random.default_rng(seed)
    priorities = rng.permutation(n)
    degrees = graph.degrees
    edge_u, edge_v = graph.edge_array()
    iterations: list[IterationRecord] = []
    total_cycles = 0.0
    cap = max_iterations if max_iterations is not None else 2 * n + 2 * graph.max_degree + 4

    active = np.arange(n, dtype=np.int64)
    base = 0
    k = 0
    while active.size:
        if k >= cap:
            break
        num_active_before = int(active.size)
        proposals = window_first_fit(graph, colors, active, base, window)
        placeable = proposals >= 0
        if not placeable.any():
            base += window  # whole window blocked for everyone: advance
            continue
        placed = active[placeable]
        colors[placed] = proposals[placeable]

        same = (colors[edge_u] == colors[edge_v]) & (colors[edge_u] != UNCOLORED)
        cu, cv = edge_u[same], edge_v[same]
        losers = np.unique(np.where(priorities[cu] < priorities[cv], cu, cv))
        colors[losers] = UNCOLORED
        # next round's active: conflict losers + this round's deferrals
        active = np.union1d(losers, active[~placeable])

        cycles = 0.0
        eff = None
        names = (f"win_assign_it{k}", f"win_detect_it{k}")
        if executor is not None:
            t1 = executor.time_iteration(degrees[placed], name=names[0])
            t2 = executor.time_iteration(degrees[placed], name=names[1])
            cycles = t1.cycles + t2.cycles
            eff = t1.simd_efficiency
            total_cycles += cycles
        iterations.append(
            IterationRecord(
                index=k,
                active_vertices=num_active_before,
                newly_colored=int(placed.size - losers.size),
                cycles=cycles,
                simd_efficiency=eff,
                kernels=names,
            )
        )
        k += 1

    return ColoringResult(
        algorithm=f"windowed-speculative-w{window}",
        colors=colors,
        iterations=iterations,
        total_cycles=total_cycles,
        device=executor.device if executor is not None else None,
        extras={"window": window, "final_base": base},
    )

"""Speculative first-fit coloring (Gebremedhin–Manne style).

The third GPU approach the paper characterizes: *optimistic* rather
than independent-set based. Every active vertex first-fit colors itself
in parallel against the current color array (kernel 1); a detection
kernel then finds monochromatic edges and uncolors the lower-priority
endpoint (kernel 2); the losers retry next round. Rounds shrink
geometrically — few launches, but each round pays two kernels and the
first round touches every vertex.

:func:`speculative_rounds` runs the loop from an arbitrary starting
state, which the algorithm-switch hybrid reuses to finish the
low-parallelism tail left by max-min.
"""

from __future__ import annotations

import numpy as np

from ..engine.context import RunContext, resolve_context
from ..graphs.csr import CSRGraph
from ._nbr import first_fit_colors
from .base import UNCOLORED, ColoringResult, IterationRecord
from .kernels import GPUExecutor

__all__ = ["speculative_coloring", "speculative_rounds"]


def speculative_rounds(
    graph: CSRGraph,
    colors: np.ndarray,
    active: np.ndarray,
    priorities: np.ndarray,
    executor: GPUExecutor | None,
    *,
    name_prefix: str = "spec",
    start_index: int = 0,
    max_iterations: int | None = None,
    context: RunContext | None = None,
) -> tuple[list[IterationRecord], float]:
    """Run speculate/resolve rounds in place until ``active`` drains.

    ``colors`` is modified in place; already-colored vertices outside
    ``active`` are respected (an active vertex never picks a stable
    neighbor's color, so conflicts only arise between active vertices
    and the invariant "stable set is conflict-free" is preserved).
    Returns the per-round records and the total simulated cycles.
    """
    ctx = resolve_context(context, executor)
    backend = ctx.backend
    degrees = graph.degrees
    edge_u, edge_v = graph.edge_array()
    iterations: list[IterationRecord] = []
    total_cycles = 0.0
    cap = max_iterations if max_iterations is not None else graph.num_vertices + 1
    k = 0
    while active.size:
        if k >= cap:
            break
        # Kernel 1: every active vertex speculatively first-fit colors
        # itself against the snapshot (assignments land "simultaneously").
        colors[active] = first_fit_colors(graph, colors, active, backend=backend)

        # Kernel 2: conflict detection — a monochromatic edge uncolors
        # its lower-priority endpoint (the loser retries next round).
        same = (colors[edge_u] == colors[edge_v]) & (colors[edge_u] != UNCOLORED)
        cu, cv = edge_u[same], edge_v[same]
        losers = np.unique(np.where(priorities[cu] < priorities[cv], cu, cv))
        colors[losers] = UNCOLORED

        cycles = 0.0
        eff = None
        idx = start_index + k
        names = (f"{name_prefix}_assign_it{idx}", f"{name_prefix}_detect_it{idx}")
        if executor is not None:
            t1 = executor.time_iteration(degrees[active], name=names[0])
            t2 = executor.time_iteration(degrees[active], name=names[1])
            cycles = t1.cycles + t2.cycles
            eff = t1.simd_efficiency
            total_cycles += cycles
        iterations.append(
            IterationRecord(
                index=idx,
                active_vertices=int(active.size),
                newly_colored=int(active.size - losers.size),
                cycles=cycles,
                simd_efficiency=eff,
                kernels=names,
            )
        )
        active = losers
        k += 1
    return iterations, total_cycles


def speculative_coloring(
    graph: CSRGraph,
    executor: GPUExecutor | None = None,
    *,
    seed: int | None = None,
    max_iterations: int | None = None,
    context: RunContext | None = None,
) -> ColoringResult:
    """Color ``graph`` by speculate-then-resolve rounds.

    Conflicts resolve by random priority (unique permutation), so the
    highest-priority vertex of any conflict always keeps its color and
    every round strictly shrinks the active set. ``context`` supplies
    the default seed and array backend when given.
    """
    ctx = resolve_context(context, executor)
    seed = ctx.resolve_seed(seed)
    n = graph.num_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    rng = np.random.default_rng(seed)
    priorities = rng.permutation(n)
    iterations, total_cycles = speculative_rounds(
        graph,
        colors,
        np.arange(n, dtype=np.int64),
        priorities,
        executor,
        max_iterations=max_iterations,
        context=ctx,
    )
    return ColoringResult(
        algorithm="speculative",
        colors=colors,
        iterations=iterations,
        total_cycles=total_cycles,
        device=executor.device if executor is not None else None,
    )

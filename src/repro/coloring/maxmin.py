"""Max-min independent-set coloring — the paper's baseline GPU algorithm.

This is the Pannotia ``color_maxmin`` kernel (first author's own suite):
every uncolored vertex compares its random priority against its
uncolored neighbors'; local *maxima* take color ``2k`` and local
*minima* take ``2k + 1`` in round ``k`` — two independent sets per
kernel sweep, halving the iteration count of plain Jones–Plassmann at
the cost of a second comparison per neighbor.

The numpy implementation performs the real algorithm (the returned
coloring is genuine and validated); when a
:class:`~repro.coloring.kernels.GPUExecutor` is supplied, each sweep is
also charged simulated device time for the active set it scanned.
"""

from __future__ import annotations

import numpy as np

from ..engine.context import RunContext, resolve_context
from ..graphs.csr import CSRGraph
from ._nbr import neighbor_max, neighbor_min
from .base import UNCOLORED, ColoringResult, IterationRecord
from .kernels import GPUExecutor
from .priorities import make_priorities

__all__ = ["maxmin_coloring", "compact_colors"]


def compact_colors(colors: np.ndarray) -> np.ndarray:
    """Remap used colors to a dense ``0..k-1`` range (order-preserving)."""
    out = np.asarray(colors, dtype=np.int64).copy()
    mask = out != UNCOLORED
    used = np.unique(out[mask])
    remap = np.full(int(used.max()) + 1 if used.size else 0, -1, dtype=np.int64)
    remap[used] = np.arange(used.size)
    out[mask] = remap[out[mask]]
    return out


def maxmin_coloring(
    graph: CSRGraph,
    executor: GPUExecutor | None = None,
    *,
    seed: int | None = None,
    priority: str = "random",
    max_iterations: int | None = None,
    stop_when_active_below: int = 0,
    compact: bool = True,
    context: RunContext | None = None,
) -> ColoringResult:
    """Color ``graph`` with the max-min independent-set method.

    Parameters
    ----------
    graph:
        Input graph.
    executor:
        Optional simulated-GPU execution engine; when given, every sweep
        is timed and the result carries the total device cycles.
    seed:
        Seed for the priority tie-break permutation (priorities are
        unique, so progress is guaranteed: the globally extreme
        uncolored vertex is always a local extremum). ``None`` falls
        back to the run context's seed.
    priority:
        Priority function — ``random`` (paper baseline), ``degree``
        (hubs colored first), or ``smallest_last``; see
        :mod:`repro.coloring.priorities`.
    max_iterations:
        Safety cap; the algorithm needs at most ``n`` sweeps.
    stop_when_active_below:
        Return early (with uncolored vertices) once the active set drops
        below this count — the hook the algorithm-switch hybrid uses to
        hand the low-parallelism tail to speculative first-fit.
    compact:
        Remap the final colors to a dense ``0..k-1`` range.
    context:
        Run context supplying the default seed and the array backend;
        resolved from ``executor`` (or a fresh default) when omitted.
    """
    ctx = resolve_context(context, executor)
    seed = ctx.resolve_seed(seed)
    backend = ctx.backend
    n = graph.num_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    priorities = make_priorities(graph, priority, seed=seed)
    degrees = graph.degrees
    iterations: list[IterationRecord] = []
    total_cycles = 0.0
    cap = max_iterations if max_iterations is not None else n + 1

    uncolored = np.ones(n, dtype=bool)
    k = 0
    while uncolored.any():
        if k >= cap:
            break
        active_ids = np.flatnonzero(uncolored)
        if active_ids.size < stop_when_active_below:
            break
        # One kernel sweep: every uncolored vertex reads uncolored
        # neighbors' priorities and tests for local max / local min.
        pr_hi = np.where(uncolored, priorities, -np.inf)
        pr_lo = np.where(uncolored, priorities, np.inf)
        nbr_hi = neighbor_max(graph, pr_hi, backend=backend)
        nbr_lo = neighbor_min(graph, pr_lo, backend=backend)
        is_max = uncolored & (priorities > nbr_hi)
        is_min = uncolored & (priorities < nbr_lo) & ~is_max
        colors[is_max] = 2 * k
        colors[is_min] = 2 * k + 1
        newly = int(is_max.sum() + is_min.sum())
        uncolored &= ~(is_max | is_min)

        cycles = 0.0
        eff = None
        if executor is not None:
            timing = executor.time_iteration(
                degrees[active_ids], name=f"maxmin_it{k}"
            )
            cycles = timing.cycles
            eff = timing.simd_efficiency
            total_cycles += cycles
        iterations.append(
            IterationRecord(
                index=k,
                active_vertices=int(active_ids.size),
                newly_colored=newly,
                cycles=cycles,
                simd_efficiency=eff,
                kernels=(f"maxmin_it{k}",),
            )
        )
        k += 1

    return ColoringResult(
        algorithm="maxmin",
        colors=compact_colors(colors) if compact else colors,
        iterations=iterations,
        total_cycles=total_cycles,
        device=executor.device if executor is not None else None,
    )

"""Priority functions for the independent-set algorithms.

Max-min and Jones–Plassmann pick per-round winners by comparing vertex
priorities; *which* priorities changes both color quality and iteration
behavior — one of the "important factors" the paper analyzes:

* ``random`` — the classic unbiased choice (paper baseline).
* ``degree`` — degree-major priority: hubs win their neighborhoods
  immediately, leave the active set early, and stop poisoning wavefronts
  with their huge scans; usually fewer colors too (Welsh–Powell effect).
* ``smallest_last`` — degeneracy-rank priority: greedy-over-smallest-last
  quality at the price of a fully serial priority chain in the worst
  case.

All priorities are unique (ties broken by a seeded random permutation),
which is what guarantees per-round progress.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = ["PRIORITY_KINDS", "make_priorities"]

PRIORITY_KINDS = ("random", "degree", "smallest_last")


def make_priorities(graph: CSRGraph, kind: str = "random", *, seed: int = 0) -> np.ndarray:
    """Unique float priority per vertex; larger wins its neighborhood."""
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    tiebreak = rng.permutation(n).astype(np.float64)
    if kind == "random":
        return tiebreak
    if kind == "degree":
        return graph.degrees.astype(np.float64) * n + tiebreak
    if kind == "smallest_last":
        from .sequential import smallest_last_order

        order = smallest_last_order(graph)
        # earlier in the smallest-last order = colored earlier = higher
        # priority
        pr = np.empty(n, dtype=np.float64)
        pr[order] = np.arange(n, 0, -1, dtype=np.float64)
        return pr
    raise ValueError(f"unknown priority kind {kind!r}; known: {PRIORITY_KINDS}")

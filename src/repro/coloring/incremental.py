"""Incremental coloring — maintain a proper coloring under graph growth.

Downstream systems rarely color once: interference graphs grow as code
is edited, social graphs as edges stream in. Rebuilding the coloring
per update wastes the GPU run that produced it; this module maintains
validity *incrementally* — new edges recolor (at most) one endpoint,
new vertices take a first-fit color — and tracks how much repair work
the update stream cost, so a user can decide when a full GPU re-color
is worth it (see ``examples/streaming_updates.py``).
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .base import UNCOLORED, num_colors_used

__all__ = ["IncrementalColoring"]


class IncrementalColoring:
    """A mutable graph + coloring that stays proper through updates.

    Start from an existing graph/coloring (e.g. a GPU run's output) or
    empty. ``add_edge`` repairs a conflict by first-fit recoloring the
    endpoint whose repair is cheaper (smaller resulting color; ties by
    lower degree). ``recolorings`` counts repairs since construction —
    the signal for when to re-run the bulk colorer.
    """

    def __init__(
        self,
        graph: CSRGraph | None = None,
        colors: np.ndarray | None = None,
    ) -> None:
        if graph is None:
            self._adj: list[set[int]] = []
            self._colors: list[int] = []
        else:
            self._adj = [set(graph.neighbors(v).tolist()) for v in range(len(graph))]
            if colors is None:
                self._colors = [UNCOLORED] * len(graph)
                for v in range(len(graph)):
                    self._colors[v] = self._first_fit(v)
            else:
                arr = np.asarray(colors, dtype=np.int64)
                if arr.shape != (len(graph),):
                    raise ValueError("colors must have one entry per vertex")
                from .base import validate_coloring

                validate_coloring(graph, arr)
                self._colors = arr.tolist()
        self.recolorings = 0
        self.edges_added = 0

    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._adj) // 2

    @property
    def colors(self) -> np.ndarray:
        """Current coloring (copy)."""
        return np.asarray(self._colors, dtype=np.int64)

    @property
    def num_colors(self) -> int:
        return num_colors_used(self.colors)

    def color_of(self, vertex: int) -> int:
        self._check(vertex)
        return int(self._colors[vertex])

    def _check(self, vertex: int) -> None:
        if not 0 <= vertex < len(self._adj):
            raise IndexError(f"vertex {vertex} out of range")

    def _first_fit(self, vertex: int) -> int:
        used = {self._colors[w] for w in self._adj[vertex]}
        c = 0
        while c in used:
            c += 1
        return c

    # ------------------------------------------------------------------

    def add_vertex(self) -> int:
        """Add an isolated vertex; returns its id (colored 0)."""
        self._adj.append(set())
        self._colors.append(0)
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``(u, v)``; returns True if a repair was needed.

        On conflict, the endpoint with the cheaper first-fit repair
        (smaller new color, ties by lower degree then higher id) is
        recolored; the coloring stays proper by construction.
        """
        self._check(u)
        self._check(v)
        if u == v:
            raise ValueError("self-loops are not allowed")
        if v in self._adj[u]:
            return False  # already present, nothing to do
        self._adj[u].add(v)
        self._adj[v].add(u)
        self.edges_added += 1
        if self._colors[u] != self._colors[v]:
            return False
        cu, cv = self._first_fit(u), self._first_fit(v)
        key_u = (cu, len(self._adj[u]), -u)
        key_v = (cv, len(self._adj[v]), -v)
        if key_u <= key_v:
            self._colors[u] = cu
        else:
            self._colors[v] = cv
        self.recolorings += 1
        return True

    def add_edges(self, pairs) -> int:
        """Insert many edges; returns the number of repairs performed."""
        before = self.recolorings
        for u, v in pairs:
            self.add_edge(int(u), int(v))
        return self.recolorings - before

    # ------------------------------------------------------------------

    def to_graph(self) -> CSRGraph:
        """Snapshot the current structure as an immutable CSR graph."""
        return CSRGraph.from_adjacency([sorted(s) for s in self._adj])

    def is_valid(self) -> bool:
        """Exhaustive validity check (for tests; updates keep it true)."""
        return all(
            self._colors[v] != self._colors[w]
            for v in range(len(self._adj))
            for w in self._adj[v]
        )

    def __repr__(self) -> str:
        return (
            f"IncrementalColoring(n={self.num_vertices}, m={self.num_edges}, "
            f"colors={self.num_colors}, recolorings={self.recolorings})"
        )

"""Kernel cost model + the engine adapters for coloring iterations.

This module is the bridge between the *algorithms* (which operate on
real graph data and produce real colorings) and the *simulator* (which
charges time). Each iteration of an iterative coloring algorithm hands
the engine its active vertex set; the engine looks up (or builds) the
corresponding :class:`~repro.engine.plan.ExecutionPlan` under a chosen
**mapping** and **schedule** and returns the simulated cycles.

The work-distribution derivations themselves live in
:mod:`repro.engine.plan` (memoized per graph × configuration), and the
run-level plumbing — device, memory model, backend, counters — in
:mod:`repro.engine.context`. What remains here is the first-order cost
model and the :class:`GPUExecutor` adapter that dispatches plans.

Mappings (how vertices become SIMT work):

* ``thread``   — one lane per vertex; a lane walks its own neighbor list
  (scattered reads, cost linear in degree). The paper's baseline.
* ``wavefront`` — one wavefront per vertex; 64 lanes stride one neighbor
  list cooperatively (coalesced reads, ``ceil(d/64)`` lockstep steps +
  a log-depth reduction).
* ``hybrid``    — degree threshold splits vertices: low-degree →
  ``thread``, high-degree → ``wavefront``. The paper's hybrid kernel.

Schedules (how work reaches compute units):

* ``grid``     — ordinary kernel launch; hardware greedy workgroup
  dispatch (:func:`repro.gpusim.scheduler.dispatch`).
* ``static``   — persistent workgroups, one per CU, each owning a static
  contiguous slab of chunks.
* ``dynamic``  — persistent workgroups fetching chunks from a global
  atomic counter.
* ``stealing`` — persistent workgroups with chunk deques and work
  stealing (the paper's technique).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine.context import RunContext
from ..engine.plan import ExecutionPlan, build_plan, degrees_fingerprint
from ..gpusim.counters import ExecutionCounters
from ..gpusim.device import DeviceConfig
from ..gpusim.kernel import KernelSpec
from ..gpusim.memory import MemoryModel
from ..gpusim.scheduler import dispatch, dispatch_tasks
from ..loadbalance.dynamic import simulate_dynamic_fetch
from ..loadbalance.workstealing import (
    StealingConfig,
    StealingResult,
    simulate_static_persistent,
    simulate_work_stealing,
)

__all__ = [
    "MAPPINGS",
    "SCHEDULES",
    "CostModel",
    "ExecutionConfig",
    "IterationTiming",
    "GPUExecutor",
]

MAPPINGS = ("thread", "wavefront", "hybrid")
SCHEDULES = ("grid", "static", "dynamic", "stealing")


@dataclass(frozen=True)
class CostModel:
    """First-order per-vertex kernel cost laws.

    A coloring iteration's inner loop per vertex ``v`` of degree ``d``:
    read own state (priority, color — a few scattered elements), scan
    ``d`` neighbor ids (CSR ``indices``) and ``d`` neighbor states, and
    do a couple of ALU ops per neighbor. The two mappings pay for the
    same elements at different rates (scattered vs. streamed) — that
    rate gap is the entire hybrid-mapping story.
    """

    device: DeviceConfig
    memory: MemoryModel

    #: scattered element reads per neighbor under the thread mapping
    #: (one for the neighbor id, one for the neighbor's state)
    reads_per_neighbor: float = 2.0
    #: ALU ops per neighbor (compare + blend)
    alu_per_neighbor: float = 2.0
    #: fixed scattered elements per active vertex (own priority, color,
    #: row offsets, result write)
    fixed_reads: float = 4.0
    #: fixed ALU ops per active vertex (loop setup, predicate)
    fixed_alu: float = 8.0

    def thread_vertex_cycles(self, degrees: np.ndarray) -> np.ndarray:
        """Per-lane cost of one vertex under the thread mapping."""
        d = np.asarray(degrees, dtype=np.float64)
        per_nbr = (
            self.reads_per_neighbor * self.memory.scattered_element_cycles
            + self.alu_per_neighbor * self.device.alu_cycles
        )
        fixed = (
            self.fixed_reads * self.memory.scattered_element_cycles
            + self.fixed_alu * self.device.alu_cycles
        )
        return fixed + d * per_nbr

    def coop_vertex_cycles(self, degrees: np.ndarray, lanes: int | None = None) -> np.ndarray:
        """Cost of one vertex processed cooperatively by ``lanes`` lanes.

        ``ceil(d / lanes)`` lockstep strides, each paying streamed reads
        and ALU for one element per lane, plus two log-depth reductions
        (max and min — the max-min kernel needs both; single-reduction
        algorithms overpay by a few cycles, below model noise).
        """
        lanes = lanes or self.device.wavefront_size
        d = np.asarray(degrees, dtype=np.float64)
        steps = np.ceil(d / lanes)
        per_step = (
            self.reads_per_neighbor * self.memory.streamed_element_cycles
            + self.alu_per_neighbor * self.device.alu_cycles
        )
        fixed = (
            self.fixed_reads * self.memory.scattered_element_cycles
            + self.fixed_alu * self.device.alu_cycles
            + 2.0 * np.log2(lanes) * self.device.reduce_step_cycles
        )
        return fixed + steps * per_step

    def traffic_elements(self, degrees: np.ndarray) -> float:
        """Total 32-bit element accesses of one iteration's kernel."""
        d = np.asarray(degrees, dtype=np.float64)
        return float(
            self.reads_per_neighbor * d.sum() + self.fixed_reads * d.size
        )


@dataclass(frozen=True)
class ExecutionConfig:
    """How the kernels are mapped and scheduled.

    ``chunk_size`` (vertices per work-stealing/dynamic chunk) must be a
    multiple of ``workgroup_size`` under the thread mapping so chunks
    align with lockstep rounds. ``sort_by_degree`` packs similar-degree
    vertices into the same wavefront — a divergence-reducing layout
    optimization analyzed as one of the paper's "important factors".
    """

    mapping: str = "thread"
    schedule: str = "grid"
    workgroup_size: int = 256
    degree_threshold: int = 64
    chunk_size: int = 256
    sort_by_degree: bool = False
    stealing: StealingConfig | None = None
    persistent_groups_per_cu: int = 1

    def __post_init__(self) -> None:
        if self.mapping not in MAPPINGS:
            raise ValueError(f"mapping must be one of {MAPPINGS}")
        if self.schedule not in SCHEDULES:
            raise ValueError(f"schedule must be one of {SCHEDULES}")
        if self.workgroup_size <= 0:
            raise ValueError("workgroup_size must be positive")
        if self.chunk_size <= 0 or self.chunk_size % self.workgroup_size:
            raise ValueError("chunk_size must be a positive multiple of workgroup_size")
        if self.degree_threshold < 1:
            raise ValueError("degree_threshold must be >= 1")
        if self.persistent_groups_per_cu < 1:
            raise ValueError("persistent_groups_per_cu must be >= 1")


@dataclass
class IterationTiming:
    """Simulated cost of one algorithm iteration's kernel work."""

    cycles: float
    simd_efficiency: float
    kernels: tuple[str, ...] = ()
    stealing: StealingResult | None = field(default=None, repr=False)
    cu_busy: np.ndarray | None = field(default=None, repr=False)
    bandwidth_bound: bool = False


class GPUExecutor:
    """Times coloring-iteration kernels under a mapping × schedule.

    One executor instance is reused across all iterations of a run; it
    is bound to a :class:`~repro.engine.context.RunContext` (built on
    the fly for the legacy ``GPUExecutor(device, config, memory)`` call
    form) whose plan cache memoizes work distributions and whose
    run-level counters aggregate across every executor in the context.
    """

    def __init__(
        self,
        device: DeviceConfig | None = None,
        config: ExecutionConfig | None = None,
        memory: MemoryModel | None = None,
        *,
        context: RunContext | None = None,
    ) -> None:
        if context is None:
            context = RunContext(
                device=device if device is not None else DeviceConfig(),
                memory=memory,
            )
        self.context = context
        self.device = device if device is not None else context.device
        self.memory = memory if memory is not None else context.memory
        self.config = config or ExecutionConfig()
        self.costs = CostModel(self.device, self.memory)
        self.plans = context.plans
        #: run-level profiling accumulated across every timed iteration;
        #: call ``counters.reset()`` to start a new measurement window.
        self.counters = ExecutionCounters()
        if self.config.workgroup_size % self.device.wavefront_size:
            raise ValueError(
                "workgroup_size must be a multiple of the device wavefront size"
            )
        if self.config.workgroup_size > self.device.max_workgroup_size:
            raise ValueError("workgroup_size exceeds device limit")

    # ------------------------------------------------------------------

    def plan_for(self, degrees: np.ndarray) -> ExecutionPlan:
        """The (cached) execution plan for one active-degree array."""
        key = (degrees_fingerprint(degrees), self.config, self.costs)
        return self.plans.get_or_build(
            key, lambda: build_plan(degrees, self.config, self.costs, self.device)
        )

    def time_iteration(
        self, active_degrees: np.ndarray, *, name: str = "kernel"
    ) -> IterationTiming:
        """Simulated cycles to run one iteration over the active set.

        ``active_degrees`` are the degrees of this round's active
        vertices, in thread-id order (the engine may re-order them when
        ``sort_by_degree`` is set — legal because an iteration kernel is
        order-independent within the round).
        """
        deg = np.asarray(active_degrees, dtype=np.int64).ravel()
        if deg.size == 0:
            return IterationTiming(cycles=0.0, simd_efficiency=1.0)
        if deg.min() < 0:
            raise ValueError("degrees must be non-negative")
        plan = self.plan_for(deg)
        timing = (
            self._grid(plan, name)
            if self.config.schedule == "grid"
            else self._persistent(plan, name)
        )
        self._observe(timing, traffic_elements=plan.traffic_elements, work_items=deg.size)
        return timing

    def time_uniform(
        self,
        num_items: int,
        cycles_per_item: float,
        *,
        traffic_elements: float = 0.0,
        name: str = "uniform",
    ) -> IterationTiming:
        """Time a kernel of ``num_items`` identical work items.

        The edge-centric kernels use this: uniform items never diverge,
        so the only costs are raw throughput, the DRAM roofline, and the
        launch. Uniform work gains nothing from work stealing, so every
        schedule is timed as a plain grid launch.
        """
        if num_items < 0:
            raise ValueError("num_items must be non-negative")
        if cycles_per_item < 0:
            raise ValueError("cycles_per_item must be non-negative")
        if num_items == 0:
            return IterationTiming(cycles=0.0, simd_efficiency=1.0)
        dev = self.device
        from ..gpusim.wavefront import num_wavefronts

        n_wf = num_wavefronts(num_items, dev.wavefront_size)
        tasks = np.full(n_wf, cycles_per_item, dtype=np.float64)
        wf_per_group = self.config.workgroup_size // dev.wavefront_size
        res = dispatch_tasks(
            name,
            tasks,
            dev,
            self.memory,
            tasks_per_group=wf_per_group,
            traffic_elements=traffic_elements,
            tracer=self.context.tracer,
        )
        # only the trailing partial wavefront idles lanes
        eff = num_items / (n_wf * dev.wavefront_size)
        timing = IterationTiming(
            cycles=res.total_cycles,
            simd_efficiency=eff,
            kernels=(name,),
            cu_busy=res.cu_busy,
            bandwidth_bound=res.is_bandwidth_bound,
        )
        self._observe(timing, traffic_elements=traffic_elements, work_items=num_items)
        return timing

    # -- profiling sinks ------------------------------------------------

    def _observe(
        self, timing: IterationTiming, *, traffic_elements: float, work_items: int
    ) -> None:
        """Report one timed kernel to the per-run and run-level sinks."""
        sinks = [self.counters]
        if self.context.counters is not self.counters:
            sinks.append(self.context.counters)
        for sink in sinks:
            sink.observe_kernel(
                cycles=timing.cycles,
                launch_cycles=self.device.launch_cycles,
                bandwidth_bound=timing.bandwidth_bound,
                traffic_elements=traffic_elements,
                work_items=work_items,
                simd_efficiency=timing.simd_efficiency,
            )
            if timing.stealing is not None:
                sink.observe_stealing(
                    attempts=timing.stealing.steal_attempts,
                    succeeded=timing.stealing.steals_succeeded,
                    migrated=timing.stealing.chunks_migrated,
                )
        tracer = self.context.tracer
        if tracer is not None:
            args: dict[str, object] = {
                "simd_efficiency": timing.simd_efficiency,
                "bandwidth_bound": timing.bandwidth_bound,
                "work_items": work_items,
                "traffic_elements": traffic_elements,
                "launch_cycles": self.device.launch_cycles,
                "mapping": self.config.mapping,
                "schedule": self.config.schedule,
            }
            if timing.stealing is not None:
                args["steal_attempts"] = timing.stealing.steal_attempts
                args["steals_succeeded"] = timing.stealing.steals_succeeded
                args["chunks_migrated"] = timing.stealing.chunks_migrated
            tracer.kernel(
                timing.kernels[0] if timing.kernels else "kernel",
                cycles=timing.cycles,
                **args,
            )

    # -- grid schedule --------------------------------------------------

    def _grid(self, plan: ExecutionPlan, name: str) -> IterationTiming:
        cfg, dev = self.config, self.device
        if cfg.mapping == "thread":
            spec = KernelSpec(
                name=name,
                item_cycles=plan.item_cycles,
                workgroup_size=cfg.workgroup_size,
                traffic_elements=plan.traffic_elements,
            )
            res = dispatch(spec, dev, self.memory, tracer=self.context.tracer)
            return IterationTiming(
                cycles=res.total_cycles,
                simd_efficiency=res.divergence.simd_efficiency,
                kernels=(name,),
                cu_busy=res.cu_busy,
                bandwidth_bound=res.is_bandwidth_bound,
            )
        # wavefront mapping dispatches cooperative tasks directly; the
        # hybrid mapping fuses packed low-degree wavefronts (divergence
        # from the plan) with cooperative high-degree tasks.
        kname = name + plan.kernel_suffix
        res = dispatch_tasks(
            kname,
            plan.tasks,
            dev,
            self.memory,
            traffic_elements=plan.traffic_elements,
            divergence=plan.divergence,
            tracer=self.context.tracer,
        )
        return IterationTiming(
            cycles=res.total_cycles,
            simd_efficiency=plan.simd_efficiency,
            kernels=(kname,),
            cu_busy=res.cu_busy,
            bandwidth_bound=res.is_bandwidth_bound,
        )

    # -- persistent schedules -------------------------------------------

    def _persistent(self, plan: ExecutionPlan, name: str) -> IterationTiming:
        cfg, dev = self.config, self.device
        chunk_cyc = plan.chunk_cycles
        workers = dev.num_cus * cfg.persistent_groups_per_cu
        launch = dev.launch_cycles
        if cfg.schedule == "static":
            owner = self._static_owner(chunk_cyc.size, workers)
            res = simulate_static_persistent(
                chunk_cyc, owner, workers, pop_cycles=dev.atomic_cycles / 8.0
            )
        elif cfg.schedule == "dynamic":
            res = simulate_dynamic_fetch(
                chunk_cyc, workers, atomic_cycles=dev.atomic_cycles
            )
        else:  # stealing
            owner = self._static_owner(chunk_cyc.size, workers)
            steal_cfg = cfg.stealing or StealingConfig(
                num_workers=workers,
                steal_cycles=dev.steal_attempt_cycles,
                pop_cycles=dev.atomic_cycles / 8.0,
            )
            if steal_cfg.num_workers != workers:
                steal_cfg = StealingConfig(
                    num_workers=workers,
                    steal_cycles=steal_cfg.steal_cycles,
                    pop_cycles=steal_cfg.pop_cycles,
                    steal_policy=steal_cfg.steal_policy,
                    steal_fraction=steal_cfg.steal_fraction,
                    max_failed_attempts=steal_cfg.max_failed_attempts,
                    seed=steal_cfg.seed,
                )
            res = simulate_work_stealing(
                chunk_cyc, owner, steal_cfg, tracer=self.context.tracer
            )
        # Roofline still applies: the chunks move the same bytes.
        bw = self.memory.bandwidth_floor_cycles(plan.traffic_elements)
        cycles = launch + max(res.makespan_cycles, bw)
        tracer = self.context.tracer
        if tracer is not None:
            # persistent-schedule analogue of the dispatcher's summary:
            # how evenly the chunk runtime occupied the workers.
            util = (
                float(res.busy_cycles.sum() / (workers * res.makespan_cycles))
                if res.makespan_cycles > 0
                else 1.0
            )
            tracer.sim_instant(
                f"{name}:{cfg.schedule}",
                cat="sched",
                at=0.0,
                workgroups=int(chunk_cyc.size),
                cus=workers,
                cu_utilization=util,
                compute_cycles=res.makespan_cycles,
                bandwidth_cycles=bw,
                bandwidth_bound=bool(bw > res.makespan_cycles),
            )
        return IterationTiming(
            cycles=cycles,
            simd_efficiency=plan.simd_efficiency,
            kernels=(name,),
            stealing=res,
            cu_busy=res.busy_cycles,
            bandwidth_bound=bw > res.makespan_cycles,
        )

    @staticmethod
    def _static_owner(num_chunks: int, workers: int) -> np.ndarray:
        """Contiguous-slab initial ownership (the OpenCL baseline)."""
        if num_chunks == 0:
            return np.empty(0, dtype=np.int64)
        per = -(-num_chunks // workers)
        return np.arange(num_chunks, dtype=np.int64) // per

"""Kernel cost builders + the GPU execution engine.

This module is the bridge between the *algorithms* (which operate on
real graph data and produce real colorings) and the *simulator* (which
charges time). Each iteration of an iterative coloring algorithm hands
the engine its active vertex set; the engine builds the corresponding
kernel work distribution under a chosen **mapping** and **schedule** and
returns the simulated cycles.

Mappings (how vertices become SIMT work):

* ``thread``   — one lane per vertex; a lane walks its own neighbor list
  (scattered reads, cost linear in degree). The paper's baseline.
* ``wavefront`` — one wavefront per vertex; 64 lanes stride one neighbor
  list cooperatively (coalesced reads, ``ceil(d/64)`` lockstep steps +
  a log-depth reduction).
* ``hybrid``    — degree threshold splits vertices: low-degree →
  ``thread``, high-degree → ``wavefront``. The paper's hybrid kernel.

Schedules (how work reaches compute units):

* ``grid``     — ordinary kernel launch; hardware greedy workgroup
  dispatch (:func:`repro.gpusim.scheduler.dispatch`).
* ``static``   — persistent workgroups, one per CU, each owning a static
  contiguous slab of chunks.
* ``dynamic``  — persistent workgroups fetching chunks from a global
  atomic counter.
* ``stealing`` — persistent workgroups with chunk deques and work
  stealing (the paper's technique).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpusim.counters import ExecutionCounters
from ..gpusim.device import DeviceConfig
from ..gpusim.kernel import KernelSpec
from ..gpusim.memory import MemoryModel
from ..gpusim.scheduler import dispatch, dispatch_tasks
from ..gpusim.wavefront import divergence_stats, simd_efficiency, wavefront_costs
from ..loadbalance.dynamic import simulate_dynamic_fetch
from ..loadbalance.partition import chunk_costs as _chunk_costs
from ..loadbalance.partition import chunk_ranges, partition_by_threshold
from ..loadbalance.workstealing import (
    StealingConfig,
    StealingResult,
    simulate_static_persistent,
    simulate_work_stealing,
)

__all__ = [
    "MAPPINGS",
    "SCHEDULES",
    "CostModel",
    "ExecutionConfig",
    "IterationTiming",
    "GPUExecutor",
]

MAPPINGS = ("thread", "wavefront", "hybrid")
SCHEDULES = ("grid", "static", "dynamic", "stealing")


@dataclass(frozen=True)
class CostModel:
    """First-order per-vertex kernel cost laws.

    A coloring iteration's inner loop per vertex ``v`` of degree ``d``:
    read own state (priority, color — a few scattered elements), scan
    ``d`` neighbor ids (CSR ``indices``) and ``d`` neighbor states, and
    do a couple of ALU ops per neighbor. The two mappings pay for the
    same elements at different rates (scattered vs. streamed) — that
    rate gap is the entire hybrid-mapping story.
    """

    device: DeviceConfig
    memory: MemoryModel

    #: scattered element reads per neighbor under the thread mapping
    #: (one for the neighbor id, one for the neighbor's state)
    reads_per_neighbor: float = 2.0
    #: ALU ops per neighbor (compare + blend)
    alu_per_neighbor: float = 2.0
    #: fixed scattered elements per active vertex (own priority, color,
    #: row offsets, result write)
    fixed_reads: float = 4.0
    #: fixed ALU ops per active vertex (loop setup, predicate)
    fixed_alu: float = 8.0

    def thread_vertex_cycles(self, degrees: np.ndarray) -> np.ndarray:
        """Per-lane cost of one vertex under the thread mapping."""
        d = np.asarray(degrees, dtype=np.float64)
        per_nbr = (
            self.reads_per_neighbor * self.memory.scattered_element_cycles
            + self.alu_per_neighbor * self.device.alu_cycles
        )
        fixed = (
            self.fixed_reads * self.memory.scattered_element_cycles
            + self.fixed_alu * self.device.alu_cycles
        )
        return fixed + d * per_nbr

    def coop_vertex_cycles(self, degrees: np.ndarray, lanes: int | None = None) -> np.ndarray:
        """Cost of one vertex processed cooperatively by ``lanes`` lanes.

        ``ceil(d / lanes)`` lockstep strides, each paying streamed reads
        and ALU for one element per lane, plus two log-depth reductions
        (max and min — the max-min kernel needs both; single-reduction
        algorithms overpay by a few cycles, below model noise).
        """
        lanes = lanes or self.device.wavefront_size
        d = np.asarray(degrees, dtype=np.float64)
        steps = np.ceil(d / lanes)
        per_step = (
            self.reads_per_neighbor * self.memory.streamed_element_cycles
            + self.alu_per_neighbor * self.device.alu_cycles
        )
        fixed = (
            self.fixed_reads * self.memory.scattered_element_cycles
            + self.fixed_alu * self.device.alu_cycles
            + 2.0 * np.log2(lanes) * self.device.reduce_step_cycles
        )
        return fixed + steps * per_step

    def traffic_elements(self, degrees: np.ndarray) -> float:
        """Total 32-bit element accesses of one iteration's kernel."""
        d = np.asarray(degrees, dtype=np.float64)
        return float(
            self.reads_per_neighbor * d.sum() + self.fixed_reads * d.size
        )


@dataclass(frozen=True)
class ExecutionConfig:
    """How the kernels are mapped and scheduled.

    ``chunk_size`` (vertices per work-stealing/dynamic chunk) must be a
    multiple of ``workgroup_size`` under the thread mapping so chunks
    align with lockstep rounds. ``sort_by_degree`` packs similar-degree
    vertices into the same wavefront — a divergence-reducing layout
    optimization analyzed as one of the paper's "important factors".
    """

    mapping: str = "thread"
    schedule: str = "grid"
    workgroup_size: int = 256
    degree_threshold: int = 64
    chunk_size: int = 256
    sort_by_degree: bool = False
    stealing: StealingConfig | None = None
    persistent_groups_per_cu: int = 1

    def __post_init__(self) -> None:
        if self.mapping not in MAPPINGS:
            raise ValueError(f"mapping must be one of {MAPPINGS}")
        if self.schedule not in SCHEDULES:
            raise ValueError(f"schedule must be one of {SCHEDULES}")
        if self.workgroup_size <= 0:
            raise ValueError("workgroup_size must be positive")
        if self.chunk_size <= 0 or self.chunk_size % self.workgroup_size:
            raise ValueError("chunk_size must be a positive multiple of workgroup_size")
        if self.degree_threshold < 1:
            raise ValueError("degree_threshold must be >= 1")
        if self.persistent_groups_per_cu < 1:
            raise ValueError("persistent_groups_per_cu must be >= 1")


@dataclass
class IterationTiming:
    """Simulated cost of one algorithm iteration's kernel work."""

    cycles: float
    simd_efficiency: float
    kernels: tuple[str, ...] = ()
    stealing: StealingResult | None = field(default=None, repr=False)
    cu_busy: np.ndarray | None = field(default=None, repr=False)
    bandwidth_bound: bool = False


class GPUExecutor:
    """Times coloring-iteration kernels under a mapping × schedule.

    One executor instance is reused across all iterations of a run; it
    owns the device, memory model, cost model, and configuration.
    """

    def __init__(
        self,
        device: DeviceConfig,
        config: ExecutionConfig | None = None,
        memory: MemoryModel | None = None,
    ) -> None:
        self.device = device
        self.config = config or ExecutionConfig()
        self.memory = memory or MemoryModel(device)
        self.costs = CostModel(device, self.memory)
        #: run-level profiling accumulated across every timed iteration;
        #: call ``counters.reset()`` to start a new measurement window.
        self.counters = ExecutionCounters()
        if self.config.workgroup_size % device.wavefront_size:
            raise ValueError(
                "workgroup_size must be a multiple of the device wavefront size"
            )
        if self.config.workgroup_size > device.max_workgroup_size:
            raise ValueError("workgroup_size exceeds device limit")

    # ------------------------------------------------------------------

    def time_iteration(
        self, active_degrees: np.ndarray, *, name: str = "kernel"
    ) -> IterationTiming:
        """Simulated cycles to run one iteration over the active set.

        ``active_degrees`` are the degrees of this round's active
        vertices, in thread-id order (the engine may re-order them when
        ``sort_by_degree`` is set — legal because an iteration kernel is
        order-independent within the round).
        """
        deg = np.asarray(active_degrees, dtype=np.int64).ravel()
        if deg.size == 0:
            return IterationTiming(cycles=0.0, simd_efficiency=1.0)
        if deg.min() < 0:
            raise ValueError("degrees must be non-negative")
        if self.config.sort_by_degree:
            # Descending: packs similar degrees into the same wavefront
            # (less divergence) *and* dispatches the heavy work first
            # (LPT-style, shrinking the idle tail).
            deg = np.sort(deg)[::-1]
        if self.config.schedule == "grid":
            timing = self._grid(deg, name)
        else:
            timing = self._persistent(deg, name)
        self.counters.observe_kernel(
            cycles=timing.cycles,
            launch_cycles=self.device.launch_cycles,
            bandwidth_bound=timing.bandwidth_bound,
            traffic_elements=self.costs.traffic_elements(deg),
            work_items=deg.size,
            simd_efficiency=timing.simd_efficiency,
        )
        if timing.stealing is not None:
            self.counters.observe_stealing(
                attempts=timing.stealing.steal_attempts,
                succeeded=timing.stealing.steals_succeeded,
                migrated=timing.stealing.chunks_migrated,
            )
        return timing

    def time_uniform(
        self,
        num_items: int,
        cycles_per_item: float,
        *,
        traffic_elements: float = 0.0,
        name: str = "uniform",
    ) -> IterationTiming:
        """Time a kernel of ``num_items`` identical work items.

        The edge-centric kernels use this: uniform items never diverge,
        so the only costs are raw throughput, the DRAM roofline, and the
        launch. Uniform work gains nothing from work stealing, so every
        schedule is timed as a plain grid launch.
        """
        if num_items < 0:
            raise ValueError("num_items must be non-negative")
        if cycles_per_item < 0:
            raise ValueError("cycles_per_item must be non-negative")
        if num_items == 0:
            return IterationTiming(cycles=0.0, simd_efficiency=1.0)
        dev = self.device
        from ..gpusim.scheduler import dispatch_tasks
        from ..gpusim.wavefront import num_wavefronts

        n_wf = num_wavefronts(num_items, dev.wavefront_size)
        tasks = np.full(n_wf, cycles_per_item, dtype=np.float64)
        wf_per_group = self.config.workgroup_size // dev.wavefront_size
        res = dispatch_tasks(
            name,
            tasks,
            dev,
            self.memory,
            tasks_per_group=wf_per_group,
            traffic_elements=traffic_elements,
        )
        # only the trailing partial wavefront idles lanes
        eff = num_items / (n_wf * dev.wavefront_size)
        timing = IterationTiming(
            cycles=res.total_cycles,
            simd_efficiency=eff,
            kernels=(name,),
            cu_busy=res.cu_busy,
            bandwidth_bound=res.is_bandwidth_bound,
        )
        self.counters.observe_kernel(
            cycles=timing.cycles,
            launch_cycles=dev.launch_cycles,
            bandwidth_bound=timing.bandwidth_bound,
            traffic_elements=traffic_elements,
            work_items=num_items,
            simd_efficiency=eff,
        )
        return timing

    # -- grid schedule --------------------------------------------------

    def _grid(self, deg: np.ndarray, name: str) -> IterationTiming:
        cfg, dev = self.config, self.device
        traffic = self.costs.traffic_elements(deg)
        if cfg.mapping == "thread":
            spec = KernelSpec(
                name=name,
                item_cycles=self.costs.thread_vertex_cycles(deg),
                workgroup_size=cfg.workgroup_size,
                traffic_elements=traffic,
            )
            res = dispatch(spec, dev, self.memory)
            return IterationTiming(
                cycles=res.total_cycles,
                simd_efficiency=res.divergence.simd_efficiency,
                kernels=(name,),
                cu_busy=res.cu_busy,
                bandwidth_bound=res.is_bandwidth_bound,
            )
        if cfg.mapping == "wavefront":
            tasks = self.costs.coop_vertex_cycles(deg)
            res = dispatch_tasks(
                name, tasks, dev, self.memory, traffic_elements=traffic
            )
            # Cooperative lanes idle only on the final partial stride.
            eff = self._coop_efficiency(deg, dev.wavefront_size)
            return IterationTiming(
                cycles=res.total_cycles,
                simd_efficiency=eff,
                kernels=(name,),
                cu_busy=res.cu_busy,
                bandwidth_bound=res.is_bandwidth_bound,
            )
        # hybrid: one fused launch — low-degree lanes packed into
        # wavefront tasks, high-degree vertices as cooperative tasks.
        low, high = partition_by_threshold(deg, cfg.degree_threshold)
        task_parts: list[np.ndarray] = []
        if low.size:
            lane = self.costs.thread_vertex_cycles(deg[low])
            task_parts.append(wavefront_costs(lane, dev.wavefront_size))
        if high.size:
            task_parts.append(self.costs.coop_vertex_cycles(deg[high]))
        tasks = np.concatenate(task_parts) if task_parts else np.empty(0)
        div = (
            divergence_stats(
                self.costs.thread_vertex_cycles(deg[low]), dev.wavefront_size
            )
            if low.size
            else None
        )
        res = dispatch_tasks(
            name + "+coop",
            tasks,
            dev,
            self.memory,
            traffic_elements=self.costs.traffic_elements(deg),
            divergence=div,
        )
        eff = div.simd_efficiency if div else self._coop_efficiency(deg, dev.wavefront_size)
        return IterationTiming(
            cycles=res.total_cycles,
            simd_efficiency=eff,
            kernels=(name + "+coop",),
            cu_busy=res.cu_busy,
            bandwidth_bound=res.is_bandwidth_bound,
        )

    @staticmethod
    def _coop_efficiency(deg: np.ndarray, lanes: int) -> float:
        """Lane utilization of cooperative strides (partial last stride)."""
        d = np.asarray(deg, dtype=np.float64)
        steps = np.maximum(np.ceil(d / lanes), 1.0)
        return float(d.sum() / (steps.sum() * lanes)) if d.size else 1.0

    # -- persistent schedules -------------------------------------------

    def _persistent(self, deg: np.ndarray, name: str) -> IterationTiming:
        cfg, dev = self.config, self.device
        chunk_cyc, eff = self._chunk_cycles(deg)
        workers = dev.num_cus * cfg.persistent_groups_per_cu
        launch = dev.launch_cycles
        if cfg.schedule == "static":
            owner = self._static_owner(chunk_cyc.size, workers)
            res = simulate_static_persistent(
                chunk_cyc, owner, workers, pop_cycles=dev.atomic_cycles / 8.0
            )
        elif cfg.schedule == "dynamic":
            res = simulate_dynamic_fetch(
                chunk_cyc, workers, atomic_cycles=dev.atomic_cycles
            )
        else:  # stealing
            owner = self._static_owner(chunk_cyc.size, workers)
            steal_cfg = cfg.stealing or StealingConfig(
                num_workers=workers,
                steal_cycles=dev.steal_attempt_cycles,
                pop_cycles=dev.atomic_cycles / 8.0,
            )
            if steal_cfg.num_workers != workers:
                steal_cfg = StealingConfig(
                    num_workers=workers,
                    steal_cycles=steal_cfg.steal_cycles,
                    pop_cycles=steal_cfg.pop_cycles,
                    steal_policy=steal_cfg.steal_policy,
                    steal_fraction=steal_cfg.steal_fraction,
                    max_failed_attempts=steal_cfg.max_failed_attempts,
                    seed=steal_cfg.seed,
                )
            res = simulate_work_stealing(chunk_cyc, owner, steal_cfg)
        # Roofline still applies: the chunks move the same bytes.
        bw = self.memory.bandwidth_floor_cycles(self.costs.traffic_elements(deg))
        cycles = launch + max(res.makespan_cycles, bw)
        return IterationTiming(
            cycles=cycles,
            simd_efficiency=eff,
            kernels=(name,),
            stealing=res,
            cu_busy=res.busy_cycles,
            bandwidth_bound=bw > res.makespan_cycles,
        )

    @staticmethod
    def _static_owner(num_chunks: int, workers: int) -> np.ndarray:
        """Contiguous-slab initial ownership (the OpenCL baseline)."""
        if num_chunks == 0:
            return np.empty(0, dtype=np.int64)
        per = -(-num_chunks // workers)
        return np.arange(num_chunks, dtype=np.int64) // per

    def _chunk_cycles(self, deg: np.ndarray) -> tuple[np.ndarray, float]:
        """Per-chunk execution cycles under the configured mapping.

        A persistent workgroup executes a chunk in lockstep *rounds* of
        ``workgroup_size`` lanes (its wavefronts run concurrently on the
        CU's SIMDs, so a round costs its slowest lane). Under the hybrid
        mapping, high-degree vertices are pulled out of the chunks and
        appended as single-vertex cooperative chunks (processed by a
        whole workgroup striding the neighbor list).
        """
        cfg, dev = self.config, self.device
        wg = cfg.workgroup_size
        if cfg.mapping == "thread":
            lane = self.costs.thread_vertex_cycles(deg)
            eff = simd_efficiency(lane, dev.wavefront_size)
            rounds = wavefront_costs(lane, wg)
            rounds_per_chunk = cfg.chunk_size // wg
            ranges = chunk_ranges(rounds.size, rounds_per_chunk)
            return _chunk_costs(rounds, ranges), eff
        if cfg.mapping == "wavefront":
            # one vertex per chunk round, whole workgroup cooperates
            tasks = self.costs.coop_vertex_cycles(deg, lanes=wg)
            eff = self._coop_efficiency(deg, wg)
            per_chunk = max(1, cfg.chunk_size // wg)
            ranges = chunk_ranges(tasks.size, per_chunk)
            return _chunk_costs(tasks, ranges), eff
        # hybrid
        low, high = partition_by_threshold(deg, cfg.degree_threshold)
        parts: list[np.ndarray] = []
        eff_lane = None
        if low.size:
            lane = self.costs.thread_vertex_cycles(deg[low])
            eff_lane = simd_efficiency(lane, dev.wavefront_size)
            rounds = wavefront_costs(lane, wg)
            ranges = chunk_ranges(rounds.size, cfg.chunk_size // wg)
            parts.append(_chunk_costs(rounds, ranges))
        if high.size:
            parts.append(self.costs.coop_vertex_cycles(deg[high], lanes=wg))
        chunks = np.concatenate(parts) if parts else np.empty(0)
        eff = eff_lane if eff_lane is not None else self._coop_efficiency(deg, wg)
        return chunks, eff

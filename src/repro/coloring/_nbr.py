"""Vectorized neighborhood primitives shared by the GPU algorithms.

These are the numpy equivalents of the kernels' inner loops — segment
reductions over CSR neighbor lists and the first-fit (mex) kernel. The
implementations live behind the :class:`~repro.engine.backend.ArrayBackend`
surface (NumPy ``reduceat`` single-pass by default, chunk-parallel for
large graphs); this module keeps the historical free-function entry
points, now with an optional ``backend=`` argument.
"""

from __future__ import annotations

import numpy as np

from ..engine.backend import ArrayBackend, get_default_backend
from ..graphs.csr import CSRGraph

__all__ = [
    "neighbor_reduce",
    "neighbor_max",
    "neighbor_min",
    "first_fit_colors",
]


def neighbor_reduce(
    graph: CSRGraph,
    values: np.ndarray,
    op: np.ufunc,
    fill: float,
    *,
    backend: ArrayBackend | None = None,
) -> np.ndarray:
    """Per-vertex ``op``-reduction of ``values`` over the neighbor lists.

    ``values`` is indexed by vertex id; rows with no neighbors get
    ``fill``, which must be ``op``'s identity (−inf for max, +inf for
    min, 0 for add).
    """
    be = backend if backend is not None else get_default_backend()
    return be.neighbor_reduce(graph, values, op, fill)


def neighbor_max(
    graph: CSRGraph, values: np.ndarray, *, backend: ArrayBackend | None = None
) -> np.ndarray:
    """Per-vertex max of neighbor ``values`` (−inf for isolated rows)."""
    be = backend if backend is not None else get_default_backend()
    return be.neighbor_max(graph, values)


def neighbor_min(
    graph: CSRGraph, values: np.ndarray, *, backend: ArrayBackend | None = None
) -> np.ndarray:
    """Per-vertex min of neighbor ``values`` (+inf for isolated rows)."""
    be = backend if backend is not None else get_default_backend()
    return be.neighbor_min(graph, values)


def first_fit_colors(
    graph: CSRGraph,
    colors: np.ndarray,
    vertices: np.ndarray,
    *,
    backend: ArrayBackend | None = None,
) -> np.ndarray:
    """Smallest color not used by any neighbor, for each given vertex.

    Vertex ``v`` with degree ``d`` gets a color in ``[0, d]`` (pigeonhole
    guarantees one is free). ``colors`` may contain
    :data:`~repro.coloring.base.UNCOLORED`; those neighbors block
    nothing. Fully vectorized over all requested vertices.
    """
    be = backend if backend is not None else get_default_backend()
    return be.first_fit_colors(graph, colors, vertices)

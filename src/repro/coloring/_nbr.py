"""Vectorized neighborhood primitives shared by the GPU algorithms.

These are the numpy equivalents of the kernels' inner loops — segment
reductions over CSR neighbor lists. Implemented with ``ufunc.reduceat``
over the ``indptr`` boundaries (one pass over the adjacency, no Python
loop), with the empty-row quirk of ``reduceat`` handled explicitly.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .base import UNCOLORED

__all__ = [
    "neighbor_reduce",
    "neighbor_max",
    "neighbor_min",
    "first_fit_colors",
]


def neighbor_reduce(
    graph: CSRGraph, values: np.ndarray, op: np.ufunc, fill: float
) -> np.ndarray:
    """Per-vertex ``op``-reduction of ``values`` over the neighbor lists.

    ``values`` is indexed by vertex id; rows with no neighbors get
    ``fill``, which must be ``op``'s identity (−inf for max, +inf for
    min, 0 for add) — a sentinel copy of it is appended to the gathered
    array so that every ``indptr`` boundary is a valid ``reduceat``
    index, and the last row's reduction absorbs it harmlessly.
    """
    vals = np.asarray(values, dtype=np.float64)
    if vals.shape != (graph.num_vertices,):
        raise ValueError("values must have one entry per vertex")
    n = graph.num_vertices
    out = np.full(n, fill, dtype=np.float64)
    m = graph.indices.size
    if m == 0 or n == 0:
        return out
    gathered = np.concatenate([vals[graph.indices], [fill]])
    starts = graph.indptr[:-1]
    empty = starts == graph.indptr[1:]
    out[:] = op.reduceat(gathered, starts)
    # rows with no neighbors got a bogus single-element "reduction"
    out[empty] = fill
    return out


def neighbor_max(graph: CSRGraph, values: np.ndarray) -> np.ndarray:
    """Per-vertex max of neighbor ``values`` (−inf for isolated rows)."""
    return neighbor_reduce(graph, values, np.maximum, -np.inf)


def neighbor_min(graph: CSRGraph, values: np.ndarray) -> np.ndarray:
    """Per-vertex min of neighbor ``values`` (+inf for isolated rows)."""
    return neighbor_reduce(graph, values, np.minimum, np.inf)


def first_fit_colors(
    graph: CSRGraph, colors: np.ndarray, vertices: np.ndarray
) -> np.ndarray:
    """Smallest color not used by any neighbor, for each given vertex.

    This is the vectorized first-fit (mex) kernel: vertex ``v`` with
    degree ``d`` gets a color in ``[0, d]`` (pigeonhole guarantees one is
    free). ``colors`` may contain :data:`UNCOLORED`; those neighbors
    block nothing. Fully vectorized over all requested vertices.
    """
    cols = np.asarray(colors, dtype=np.int64)
    if cols.shape != (graph.num_vertices,):
        raise ValueError("colors must have one entry per vertex")
    verts = np.asarray(vertices, dtype=np.int64).ravel()
    if verts.size == 0:
        return np.empty(0, dtype=np.int64)
    if verts.min() < 0 or verts.max() >= graph.num_vertices:
        raise ValueError("vertex id out of range")

    deg = graph.degrees[verts]
    slots = deg + 1  # candidate colors 0..deg per vertex
    slot_start = np.concatenate([[0], np.cumsum(slots)])
    total = int(slot_start[-1])

    # Gather the adjacency of the requested vertices.
    starts = graph.indptr[verts]
    ends = graph.indptr[verts + 1]
    counts = ends - starts
    row_of_entry = np.repeat(np.arange(verts.size), counts)
    # flat positions of each neighbor entry in graph.indices
    if counts.sum():
        offsets = np.repeat(starts - np.concatenate([[0], np.cumsum(counts)[:-1]]), counts)
        entry_pos = np.arange(int(counts.sum()), dtype=np.int64) + offsets
        nbr_color = cols[graph.indices[entry_pos]]
    else:
        nbr_color = np.empty(0, dtype=np.int64)

    blocked = np.zeros(total, dtype=bool)
    if nbr_color.size:
        valid = (nbr_color >= 0) & (nbr_color <= deg[row_of_entry])
        blocked[slot_start[row_of_entry[valid]] + nbr_color[valid]] = True

    # mex per segment: smallest unblocked in-segment offset.
    in_seg = np.arange(total, dtype=np.int64) - np.repeat(slot_start[:-1], slots)
    candidate = np.where(blocked, np.iinfo(np.int64).max, in_seg)
    return np.minimum.reduceat(candidate, slot_start[:-1]).astype(np.int64)

"""Jacobian compression — the end-to-end use case of distance-2 coloring.

Sparse Jacobian estimation by finite differences: columns that share no
row can be perturbed together, so the number of function evaluations
drops from ``n`` columns to the number of *column groups* — a proper
coloring of the column-intersection structure (equivalently, a partial
distance-2 coloring of the bipartite row/column graph).

This module implements the full pipeline directly on the sparsity
pattern (never forming AᵀA):

* :func:`column_intersection_coloring` — greedy column coloring over the
  pattern, with natural or largest-first ordering.
* :func:`seed_matrix` — the 0/1 seed ``S`` with one column per group.
* :func:`recover_jacobian` — exact recovery of every stored entry of
  ``J`` from the compressed product ``J @ S`` (each row sees at most one
  member of each group, by construction).

The round-trip ``recover(J @ seed) == J`` is the correctness test.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "column_intersection_coloring",
    "seed_matrix",
    "recover_jacobian",
    "compression_ratio",
]


def _pattern_csc(pattern) -> sp.csc_matrix:
    mat = sp.csc_matrix(pattern)
    mat.eliminate_zeros()
    return mat


def column_intersection_coloring(
    pattern, *, order: str = "largest_first"
) -> np.ndarray:
    """Greedy structurally-orthogonal column coloring of ``pattern``.

    Two columns get different colors iff some row touches both. Works
    row-list-wise on the pattern itself (no AᵀA). ``order`` is
    ``natural`` or ``largest_first`` (columns by descending nnz —
    usually fewer groups).
    """
    mat = _pattern_csc(pattern)
    rows_of = np.split(mat.indices, mat.indptr[1:-1])
    n_rows, n_cols = mat.shape
    if order == "natural":
        visit = range(n_cols)
    elif order == "largest_first":
        nnz = np.diff(mat.indptr)
        visit = np.argsort(-nnz, kind="stable")
    else:
        raise ValueError(f"unknown order {order!r}")

    colors = np.full(n_cols, -1, dtype=np.int64)
    # forbidden[r, :] tracked sparsely: for each row, the set of colors
    # already present in that row
    row_colors: list[set[int]] = [set() for _ in range(n_rows)]
    for j in visit:
        j = int(j)
        blocked: set[int] = set()
        for r in rows_of[j]:
            blocked |= row_colors[int(r)]
        c = 0
        while c in blocked:
            c += 1
        colors[j] = c
        for r in rows_of[j]:
            row_colors[int(r)].add(c)
    return colors


def seed_matrix(colors: np.ndarray) -> np.ndarray:
    """The 0/1 seed ``S`` (n_cols × n_groups): ``S[j, colors[j]] = 1``."""
    cols = np.asarray(colors, dtype=np.int64)
    if cols.size and cols.min() < 0:
        raise ValueError("colors must be a complete coloring (no negatives)")
    k = int(cols.max()) + 1 if cols.size else 0
    seed = np.zeros((cols.size, k), dtype=np.float64)
    seed[np.arange(cols.size), cols] = 1.0
    return seed


def recover_jacobian(pattern, compressed: np.ndarray, colors: np.ndarray) -> sp.csr_matrix:
    """Reconstruct ``J`` from ``compressed = J @ seed_matrix(colors)``.

    For a structurally-orthogonal coloring, entry ``J[r, j]`` is exactly
    ``compressed[r, colors[j]]`` (no other column of that group touches
    row ``r``). Returns a CSR matrix with the pattern's sparsity.
    """
    mat = sp.csr_matrix(pattern)
    mat.eliminate_zeros()
    cols = np.asarray(colors, dtype=np.int64)
    comp = np.asarray(compressed, dtype=np.float64)
    if comp.shape[0] != mat.shape[0]:
        raise ValueError("compressed row count must match the pattern")
    if cols.shape != (mat.shape[1],):
        raise ValueError("colors must have one entry per column")
    if cols.size and comp.shape[1] <= cols.max():
        raise ValueError("compressed has fewer groups than the coloring uses")
    coo = mat.tocoo()
    data = comp[coo.row, cols[coo.col]]
    return sp.csr_matrix((data, (coo.row, coo.col)), shape=mat.shape)


def compression_ratio(colors: np.ndarray) -> float:
    """Function evaluations saved: ``n_cols / n_groups``."""
    cols = np.asarray(colors, dtype=np.int64)
    if cols.size == 0:
        return 1.0
    groups = int(cols.max()) + 1
    return cols.size / groups

"""Per-thread SIMT device-kernel specs for the GPU coloring algorithms.

The algorithm modules in this package are *vectorized* numpy programs —
fast hosts for the simulator, but opaque to static analysis: a
``neighbor_max`` call hides the divergent degree loop every real GPU
kernel pays for. This module states each algorithm's kernels in the
form the hardware actually executes: one Python function per kernel,
written per-thread (OpenCL/CUDA style), over raw CSR arrays.

They serve two masters:

* :mod:`repro.check.flow` parses their ASTs to classify every branch,
  loop bound, and memory subscript (uniform/divergent,
  coalesced/strided/scattered) and to derive the static per-thread
  work model that predicts load imbalance before a run.
* The test suite *executes* them, one thread at a time, against the
  vectorized implementations — the spec cannot drift from the code it
  describes.

Kernel conventions (what the analyzer assumes):

* ``tid`` is the global thread id (one thread per vertex or per
  directed edge); ``wid``/``lane`` are the wavefront id and intra-
  wavefront lane of cooperative kernels.
* Kernels read input arrays and write *separate* output arrays
  (``colors_in``/``colors_out``), making one launch a pure function of
  its inputs — the same snapshot semantics the vectorized sweeps use.
* Scalars listed in ``uniform_params`` are launch constants (uniform
  across threads); every other non-id parameter is a global-memory
  array.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from collections.abc import Callable
from dataclasses import dataclass, field

from .base import UNCOLORED

__all__ = [
    "DeviceKernel",
    "DEVICE_KERNELS",
    "KERNEL_ALGORITHMS",
    "device_kernel",
    "kernels_for",
    "kernel_ast",
]

#: thread-identity parameter names and the variance they seed.
THREAD_ID_PARAMS = ("tid", "lane")
WAVEFRONT_ID_PARAMS = ("wid",)


@dataclass(frozen=True)
class DeviceKernel:
    """One registered device kernel: the function plus its launch facts."""

    name: str
    fn: Callable[..., None]
    algorithms: tuple[str, ...]
    mapping: str  # "thread" | "wavefront"
    grid: str  # what a thread is: "vertex" | "edge" | "vertex-wavefront"
    uniform_params: tuple[str, ...] = ()
    #: arrays every kernel access hits with atomic RMW (the spec-level
    #: spelling of atomicMax/atomicMin) — the static verifier's atomic
    #: exemption and the dynamic log's ``atomic=True`` tag.
    atomic_arrays: tuple[str, ...] = ()
    #: wavefront-local (LDS) arrays: shared by the lanes of one
    #: wavefront only, never across wavefronts.
    local_arrays: tuple[str, ...] = ()
    #: declared launch dtypes, ``(param, dtype)`` pairs covering every
    #: parameter: element dtype for arrays, scalar dtype for ids and
    #: uniforms. These are *launch facts* — what the host actually
    #: passes — and seed the static dtype/width certifier
    #: (:mod:`repro.check.flow.types`); a drift test pins them to the
    #: vectorized implementations' runtime dtypes.
    param_dtypes: tuple[tuple[str, str], ...] = ()
    notes: str = ""

    @property
    def params(self) -> tuple[str, ...]:
        return tuple(inspect.signature(self.fn).parameters)

    @property
    def dtypes(self) -> dict[str, str]:
        """``param name → declared dtype`` (empty when undeclared)."""
        return dict(self.param_dtypes)

    @property
    def array_params(self) -> tuple[str, ...]:
        """Global-memory array parameters (everything but ids + uniforms)."""
        skip = set(self.uniform_params) | set(THREAD_ID_PARAMS) | set(WAVEFRONT_ID_PARAMS)
        return tuple(p for p in self.params if p not in skip)


#: kernel name → spec, in registration order.
DEVICE_KERNELS: dict[str, DeviceKernel] = {}

#: the GPU algorithm names the registry covers (must stay in sync with
#: ``repro.harness.runner.GPU_ALGORITHMS``).
KERNEL_ALGORITHMS = (
    "maxmin",
    "jp",
    "speculative",
    "hybrid-switch",
    "edge-centric",
    "partitioned",
)


def device_kernel(
    *,
    algorithms: tuple[str, ...],
    mapping: str = "thread",
    grid: str = "vertex",
    uniform_params: tuple[str, ...] = (),
    atomic_arrays: tuple[str, ...] = (),
    local_arrays: tuple[str, ...] = (),
    param_dtypes: tuple[tuple[str, str], ...] = (),
    notes: str = "",
) -> Callable[[Callable[..., None]], Callable[..., None]]:
    """Register a per-thread kernel spec under its algorithms."""

    def register(fn: Callable[..., None]) -> Callable[..., None]:
        spec = DeviceKernel(
            name=fn.__name__,
            fn=fn,
            algorithms=algorithms,
            mapping=mapping,
            grid=grid,
            uniform_params=uniform_params,
            atomic_arrays=atomic_arrays,
            local_arrays=local_arrays,
            param_dtypes=param_dtypes,
            notes=notes,
        )
        DEVICE_KERNELS[spec.name] = spec
        return fn

    return register


def kernels_for(algorithm: str, *, mapping: str = "thread") -> tuple[DeviceKernel, ...]:
    """The kernel specs one iteration of ``algorithm`` launches."""
    found = tuple(
        k
        for k in DEVICE_KERNELS.values()
        if algorithm in k.algorithms and k.mapping == mapping
    )
    if not found:
        known = sorted({a for k in DEVICE_KERNELS.values() for a in k.algorithms})
        raise KeyError(
            f"no {mapping!r}-mapping device kernels for {algorithm!r}; known: {known}"
        )
    return found


def kernel_ast(kernel: DeviceKernel) -> ast.FunctionDef:
    """The kernel function's (dedented) AST — the analyzer's input."""
    source = textwrap.dedent(inspect.getsource(kernel.fn))
    module = ast.parse(source)
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise ValueError(f"no function definition found for kernel {kernel.name}")


# ----------------------------------------------------------------------
# max-min (the paper's Pannotia baseline) — also phase 1 of the
# algorithm-switch hybrid
# ----------------------------------------------------------------------


@device_kernel(
    algorithms=("maxmin", "hybrid-switch"),
    uniform_params=("round_k",),
    param_dtypes=(
        ("tid", "int64"),
        ("indptr", "int64"),
        ("indices", "int32"),
        ("priorities", "float64"),
        ("colors_in", "int64"),
        ("colors_out", "int64"),
        ("round_k", "int32"),
    ),
    notes="two independent sets per sweep: local maxima take 2k, minima 2k+1",
)
def maxmin_sweep(tid, indptr, indices, priorities, colors_in, colors_out, round_k):
    """One max-min sweep for vertex ``tid`` (thread-per-vertex)."""
    if colors_in[tid] != UNCOLORED:
        return
    my_priority = priorities[tid]
    start = indptr[tid]
    end = indptr[tid + 1]
    is_max = True
    is_min = True
    for e in range(start, end):  # divergent: trip count = degree(tid)
        u = indices[e]
        if colors_in[u] != UNCOLORED:
            continue
        other = priorities[u]
        if other > my_priority:
            is_max = False
        if other < my_priority:
            is_min = False
    if is_max:
        colors_out[tid] = 2 * round_k
    elif is_min:
        colors_out[tid] = 2 * round_k + 1


@device_kernel(
    algorithms=("maxmin",),
    mapping="wavefront",
    grid="vertex-wavefront",
    uniform_params=("round_k", "wavefront_size"),
    local_arrays=("scratch_max", "scratch_min"),
    param_dtypes=(
        ("wid", "int64"),
        ("lane", "int64"),
        ("indptr", "int64"),
        ("indices", "int32"),
        ("priorities", "float64"),
        ("colors_in", "int64"),
        ("colors_out", "int64"),
        ("scratch_max", "float64"),
        ("scratch_min", "float64"),
        ("round_k", "int32"),
        ("wavefront_size", "int32"),
    ),
    notes="cooperative variant: 64 lanes stride one neighbor list",
)
def maxmin_wavefront_sweep(
    wid,
    lane,
    indptr,
    indices,
    priorities,
    colors_in,
    colors_out,
    scratch_max,
    scratch_min,
    round_k,
    wavefront_size,
):
    """Wavefront-cooperative max-min: wavefront ``wid`` owns vertex ``wid``.

    Lanes stride the neighbor list cooperatively (coalesced), fold
    their partial extrema into per-lane scratch, and reduce log-depth.
    The branch on the owner's color is *wavefront*-varying — every lane
    of the wavefront agrees — so it costs no intra-wavefront divergence.
    """
    if colors_in[wid] != UNCOLORED:  # wavefront-varying, not divergent
        return
    my_priority = priorities[wid]
    start = indptr[wid]
    end = indptr[wid + 1]
    lane_max = my_priority
    lane_min = my_priority
    for e in range(start + lane, end, wavefront_size):  # coalesced stride
        u = indices[e]
        if colors_in[u] != UNCOLORED:
            continue
        other = priorities[u]
        if other > lane_max:
            lane_max = other
        if other < lane_min:
            lane_min = other
    scratch_max[lane] = lane_max
    scratch_min[lane] = lane_min
    for step in (32, 16, 8, 4, 2, 1):  # uniform log-depth reduction
        if lane < step:
            if scratch_max[lane + step] > scratch_max[lane]:
                scratch_max[lane] = scratch_max[lane + step]
            if scratch_min[lane + step] < scratch_min[lane]:
                scratch_min[lane] = scratch_min[lane + step]
    if lane == 0:
        if scratch_max[0] <= my_priority:
            colors_out[wid] = 2 * round_k
        elif scratch_min[0] >= my_priority:
            colors_out[wid] = 2 * round_k + 1


# ----------------------------------------------------------------------
# Jones–Plassmann
# ----------------------------------------------------------------------


@device_kernel(
    algorithms=("jp",),
    param_dtypes=(
        ("tid", "int64"),
        ("indptr", "int64"),
        ("indices", "int32"),
        ("priorities", "float64"),
        ("colors_in", "int64"),
        ("colors_out", "int64"),
    ),
    notes="independent-set winners take the smallest color absent around them",
)
def jp_sweep(tid, indptr, indices, priorities, colors_in, colors_out):
    """One JP round for vertex ``tid``: win the neighborhood, first-fit."""
    if colors_in[tid] != UNCOLORED:
        return
    my_priority = priorities[tid]
    start = indptr[tid]
    end = indptr[tid + 1]
    degree = end - start
    wins = True
    for e in range(start, end):  # divergent: trip count = degree(tid)
        u = indices[e]
        if colors_in[u] == UNCOLORED and priorities[u] > my_priority:
            wins = False
    if wins:
        forbidden = [False] * (degree + 1)  # private array, degree-sized
        for e in range(start, end):
            c = colors_in[indices[e]]
            if c != UNCOLORED and c <= degree:
                forbidden[c] = True
        chosen = degree
        for c in range(degree + 1):  # divergent: pigeonhole bound = degree+1
            if not forbidden[c]:
                chosen = c
                break
        colors_out[tid] = chosen


# ----------------------------------------------------------------------
# speculative first-fit (Gebremedhin–Manne) — also the hybrid-switch
# tail and both phases of partitioned coloring
# ----------------------------------------------------------------------


@device_kernel(
    algorithms=("speculative", "hybrid-switch", "partitioned"),
    param_dtypes=(
        ("tid", "int64"),
        ("indptr", "int64"),
        ("indices", "int32"),
        ("colors_in", "int64"),
        ("colors_out", "int64"),
    ),
    notes="optimistic first-fit against the snapshot; conflicts resolve later",
)
def spec_assign(tid, indptr, indices, colors_in, colors_out):
    """Speculatively first-fit color vertex ``tid`` against the snapshot."""
    if colors_in[tid] != UNCOLORED:
        return
    start = indptr[tid]
    end = indptr[tid + 1]
    degree = end - start
    forbidden = [False] * (degree + 1)
    for e in range(start, end):  # divergent: trip count = degree(tid)
        c = colors_in[indices[e]]
        if c != UNCOLORED and c <= degree:
            forbidden[c] = True
    chosen = degree
    for c in range(degree + 1):
        if not forbidden[c]:
            chosen = c
            break
    colors_out[tid] = chosen


@device_kernel(
    algorithms=("speculative", "hybrid-switch", "partitioned"),
    param_dtypes=(
        ("tid", "int64"),
        ("indptr", "int64"),
        ("indices", "int32"),
        ("priorities", "float64"),
        ("colors_in", "int64"),
        ("colors_out", "int64"),
    ),
    notes="monochromatic edges uncolor their lower-priority endpoint",
)
def spec_detect(tid, indptr, indices, priorities, colors_in, colors_out):
    """Uncolor vertex ``tid`` if a higher-priority neighbor shares its color."""
    my_color = colors_in[tid]
    if my_color == UNCOLORED:
        return
    my_priority = priorities[tid]
    start = indptr[tid]
    end = indptr[tid + 1]
    for e in range(start, end):  # divergent: trip count = degree(tid)
        u = indices[e]
        if colors_in[u] == my_color and my_priority < priorities[u]:
            colors_out[tid] = UNCOLORED


# ----------------------------------------------------------------------
# edge-centric max-min — uniform O(1) items by construction
# ----------------------------------------------------------------------


@device_kernel(
    algorithms=("edge-centric",),
    grid="edge",
    atomic_arrays=("acc_max", "acc_min"),
    param_dtypes=(
        ("tid", "int64"),
        ("edge_u", "int64"),
        ("edge_v", "int32"),
        ("priorities", "float64"),
        ("colors_in", "int64"),
        ("acc_max", "float64"),
        ("acc_min", "float64"),
    ),
    notes="one thread per directed edge; atomic max/min fold into the owner",
)
def ec_edge_fold(tid, edge_u, edge_v, priorities, colors_in, acc_max, acc_min):
    """Fold one directed edge's far-endpoint priority into its owner.

    No loops: every work item is O(1) — the formulation that trades
    divergence for per-edge atomics. The endpoint loads are coalesced
    (edge arrays indexed by ``tid``); the accumulator folds scatter.
    """
    owner = edge_u[tid]
    other = edge_v[tid]
    if colors_in[owner] != UNCOLORED:
        return
    if colors_in[other] != UNCOLORED:
        return
    p = priorities[other]
    if p > acc_max[owner]:
        acc_max[owner] = p  # atomic max (scattered)
    if p < acc_min[owner]:
        acc_min[owner] = p  # atomic min (scattered)


@device_kernel(
    algorithms=("edge-centric",),
    uniform_params=("round_k",),
    param_dtypes=(
        ("tid", "int64"),
        ("priorities", "float64"),
        ("colors_in", "int64"),
        ("colors_out", "int64"),
        ("acc_max", "float64"),
        ("acc_min", "float64"),
        ("round_k", "int32"),
    ),
    notes="O(1) per-vertex decision against the folded accumulators",
)
def ec_decide(tid, priorities, colors_in, colors_out, acc_max, acc_min, round_k):
    """Color vertex ``tid`` from its folded neighborhood extrema."""
    if colors_in[tid] != UNCOLORED:
        return
    my_priority = priorities[tid]
    if my_priority > acc_max[tid]:
        colors_out[tid] = 2 * round_k
    elif my_priority < acc_min[tid]:
        colors_out[tid] = 2 * round_k + 1

"""Static work partitioning — chunking, balanced splits, degree binning.

These are the *static* answers to load imbalance that the paper's
baseline and hybrid techniques use:

* :func:`chunk_ranges` / :func:`static_partition` — the baseline
  persistent-kernel assignment (each workgroup owns a contiguous slab).
* :func:`cost_balanced_partition` — contiguous slabs balanced by a
  per-item cost estimate (degree), the "smart static" variant.
* :func:`degree_bins` / :func:`partition_by_threshold` — split vertices
  into low/high-degree classes for the hybrid mapping, where low-degree
  vertices run thread-per-vertex and high-degree ones run
  wavefront-per-vertex.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "chunk_ranges",
    "static_partition",
    "cost_balanced_partition",
    "partition_by_threshold",
    "degree_bins",
    "chunk_costs",
]


def chunk_ranges(num_items: int, chunk_size: int) -> np.ndarray:
    """Split ``range(num_items)`` into chunks; returns ``(k, 2)`` ranges.

    Every chunk is ``[start, end)``; the last may be short.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    starts = np.arange(0, num_items, chunk_size, dtype=np.int64)
    ends = np.minimum(starts + chunk_size, num_items)
    return np.stack([starts, ends], axis=1)


def static_partition(num_items: int, num_workers: int) -> np.ndarray:
    """Contiguous equal-count slabs, one per worker; ``(w, 2)`` ranges.

    Early workers get the remainder items, matching the usual
    ``(n + w - 1) // w`` OpenCL slabbing.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    base, extra = divmod(num_items, num_workers)
    sizes = np.full(num_workers, base, dtype=np.int64)
    sizes[:extra] += 1
    ends = np.cumsum(sizes)
    starts = ends - sizes
    return np.stack([starts, ends], axis=1)


def cost_balanced_partition(costs: np.ndarray, num_workers: int) -> np.ndarray:
    """Contiguous slabs with near-equal total *cost* per worker.

    Splits the prefix-sum of ``costs`` at equal fractions. Guarantees
    monotone, covering ranges (some may be empty if costs are spiky).
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    c = np.asarray(costs, dtype=np.float64).ravel()
    if c.size and c.min() < 0:
        raise ValueError("costs must be non-negative")
    n = c.size
    if n == 0:
        return np.zeros((num_workers, 2), dtype=np.int64)
    prefix = np.concatenate([[0.0], np.cumsum(c)])
    total = prefix[-1]
    if total == 0:
        return static_partition(n, num_workers)
    targets = total * np.arange(1, num_workers, dtype=np.float64) / num_workers
    cuts = np.searchsorted(prefix[1:], targets, side="left") + 1
    bounds = np.concatenate([[0], np.minimum(cuts, n), [n]])
    bounds = np.maximum.accumulate(bounds)
    return np.stack([bounds[:-1], bounds[1:]], axis=1)


def partition_by_threshold(
    degrees: np.ndarray, threshold: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vertex ids with degree < ``threshold`` vs. degree >= ``threshold``.

    The hybrid mapping's split: the first array runs thread-per-vertex,
    the second wavefront-per-vertex.
    """
    deg = np.asarray(degrees)
    ids = np.arange(deg.size, dtype=np.int64)
    low = deg < threshold
    return ids[low], ids[~low]


def degree_bins(degrees: np.ndarray, boundaries: np.ndarray | list[int]) -> np.ndarray:
    """Bin index per vertex: bin ``i`` holds ``boundaries[i-1] <= d < boundaries[i]``.

    ``boundaries`` must be strictly increasing; values below the first
    boundary go to bin 0, values at/above the last to bin ``len(boundaries)``.
    """
    b = np.asarray(boundaries, dtype=np.int64)
    if b.size == 0:
        raise ValueError("need at least one boundary")
    if np.any(np.diff(b) <= 0):
        raise ValueError("boundaries must be strictly increasing")
    return np.searchsorted(b, np.asarray(degrees), side="right").astype(np.int64)


def chunk_costs(item_costs: np.ndarray, ranges: np.ndarray) -> np.ndarray:
    """Total cost per ``[start, end)`` chunk (vectorized prefix-sum)."""
    c = np.asarray(item_costs, dtype=np.float64).ravel()
    r = np.asarray(ranges, dtype=np.int64)
    if r.ndim != 2 or r.shape[1] != 2:
        raise ValueError("ranges must be (k, 2)")
    if r.size and (r.min() < 0 or r.max() > c.size or np.any(r[:, 0] > r[:, 1])):
        raise ValueError("ranges out of bounds or inverted")
    prefix = np.concatenate([[0.0], np.cumsum(c)])
    return prefix[r[:, 1]] - prefix[r[:, 0]]

"""Work-stealing runtime — persistent workgroups with chunk deques.

This is the paper's first load-imbalance technique. The GPU realization
(task queues in global memory, one deque per persistent workgroup,
steals via atomic CAS on the queue ends) is simulated event-driven:

* Each worker (persistent workgroup) starts with a deque of *chunks*
  (contiguous vertex ranges) from a static partition.
* A free worker pops from its own deque bottom (cheap atomic), else
  picks a victim — uniformly at random or the currently richest — and
  steals the top *half* of the victim's deque, paying
  ``steal_cycles`` per attempt whether or not it succeeds.
* A worker retires when every deque is empty.

Because the event queue breaks time ties in scheduling order and the
victim RNG is seeded, every run is exactly reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..gpusim.events import EventSimulator
from ..gpusim.trace import Timeline

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = [
    "StealingConfig",
    "StealingResult",
    "simulate_work_stealing",
    "simulate_static_persistent",
]


@dataclass(frozen=True)
class StealingConfig:
    """Tuning knobs of the work-stealing runtime.

    ``steal_policy`` is ``"random"`` (pick any other worker, may fail on
    an empty victim) or ``"richest"`` (scan for the fullest deque — more
    traffic per attempt on real hardware, modelled as the same
    ``steal_cycles`` but it never picks an empty victim while work
    exists).
    """

    num_workers: int
    steal_cycles: float = 400.0
    pop_cycles: float = 8.0
    steal_policy: str = "random"
    steal_fraction: float = 0.5
    max_failed_attempts: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.steal_policy not in ("random", "richest"):
            raise ValueError("steal_policy must be 'random' or 'richest'")
        if not 0.0 < self.steal_fraction <= 1.0:
            raise ValueError("steal_fraction must be in (0, 1]")
        if self.steal_cycles < 0 or self.pop_cycles < 0:
            raise ValueError("overhead cycles must be non-negative")


@dataclass
class StealingResult:
    """Outcome of one work-stealing (or static persistent) run."""

    makespan_cycles: float
    busy_cycles: np.ndarray  # useful chunk-execution cycles per worker
    overhead_cycles: np.ndarray  # pop + steal cycles per worker
    chunks_executed: np.ndarray  # chunks each worker ran
    steal_attempts: int
    steals_succeeded: int
    chunks_migrated: int
    timeline: Timeline | None = field(default=None, repr=False)

    @property
    def load_imbalance(self) -> float:
        """max / mean of per-worker busy time (1.0 = perfect)."""
        mean = float(self.busy_cycles.mean())
        if mean == 0:
            return 1.0
        return float(self.busy_cycles.max() / mean)

    @property
    def total_overhead(self) -> float:
        return float(self.overhead_cycles.sum())

    def as_row(self) -> dict[str, object]:
        return {
            "makespan": round(self.makespan_cycles, 1),
            "imbalance": round(self.load_imbalance, 3),
            "steal_attempts": self.steal_attempts,
            "steals_ok": self.steals_succeeded,
            "migrated": self.chunks_migrated,
            "overhead": round(self.total_overhead, 1),
        }


def simulate_static_persistent(
    chunk_cycles: np.ndarray,
    owner: np.ndarray,
    num_workers: int,
    *,
    pop_cycles: float = 8.0,
) -> StealingResult:
    """Persistent workgroups, no stealing: each runs only its own chunks.

    This is the static baseline the work-stealing figure compares
    against; makespan is simply the heaviest worker.
    """
    costs = np.asarray(chunk_cycles, dtype=np.float64).ravel()
    who = np.asarray(owner, dtype=np.int64).ravel()
    if costs.shape != who.shape:
        raise ValueError("chunk_cycles and owner must align")
    if who.size and (who.min() < 0 or who.max() >= num_workers):
        raise ValueError("owner out of range")
    busy = np.zeros(num_workers, dtype=np.float64)
    count = np.zeros(num_workers, dtype=np.int64)
    np.add.at(busy, who, costs)
    np.add.at(count, who, 1)
    overhead = count * pop_cycles
    makespan = float((busy + overhead).max()) if num_workers else 0.0
    return StealingResult(
        makespan_cycles=makespan,
        busy_cycles=busy,
        overhead_cycles=overhead.astype(np.float64),
        chunks_executed=count,
        steal_attempts=0,
        steals_succeeded=0,
        chunks_migrated=0,
    )


def simulate_work_stealing(
    chunk_cycles: np.ndarray,
    owner: np.ndarray,
    config: StealingConfig,
    *,
    record_timeline: bool = False,
    tracer: "Tracer | None" = None,
) -> StealingResult:
    """Event-driven work-stealing run over pre-costed chunks.

    ``chunk_cycles[i]`` is the execution cost of chunk ``i`` (already
    wavefront-aggregated by the caller); ``owner[i]`` its initial worker.

    When a :class:`~repro.obs.tracer.Tracer` is attached, every steal
    attempt lands in the sink as an instant at its simulated time —
    ``"steal"`` (with thief/victim/migrated chunk count) on success,
    ``"steal-fail"`` otherwise — nested inside the kernel event the
    executor emits afterwards. Tracing never touches the victim RNG or
    the event queue, so traced and untraced runs are cycle-identical.
    """
    costs = np.asarray(chunk_cycles, dtype=np.float64).ravel()
    who = np.asarray(owner, dtype=np.int64).ravel()
    if costs.shape != who.shape:
        raise ValueError("chunk_cycles and owner must align")
    if costs.size and costs.min() < 0:
        raise ValueError("chunk costs must be non-negative")
    w = config.num_workers
    if who.size and (who.min() < 0 or who.max() >= w):
        raise ValueError("owner out of range")

    rng = np.random.default_rng(config.seed)
    sim = EventSimulator()
    timeline = Timeline(w) if record_timeline else None

    deques: list[deque[int]] = [deque() for _ in range(w)]
    for idx in np.argsort(who, kind="stable"):
        deques[who[idx]].append(int(idx))
    remaining = costs.size  # chunks still queued (not yet started)

    busy = np.zeros(w, dtype=np.float64)
    overhead = np.zeros(w, dtype=np.float64)
    executed = np.zeros(w, dtype=np.int64)
    failed = np.zeros(w, dtype=np.int64)
    stats = {"attempts": 0, "hits": 0, "migrated": 0}
    makespan = 0.0

    def pick_victim(me: int) -> int | None:
        if config.steal_policy == "richest":
            sizes = [len(d) for d in deques]
            sizes[me] = -1
            best = int(np.argmax(sizes))
            return best if sizes[best] > 0 else None
        cand = int(rng.integers(0, w - 1))
        if cand >= me:
            cand += 1
        return cand

    def run_chunk(me: int, chunk: int, start: float) -> None:
        """Execute one chunk beginning at ``start``; step again at its end."""
        nonlocal remaining, makespan
        remaining -= 1
        cost = costs[chunk]
        end = start + cost
        busy[me] += cost
        executed[me] += 1
        failed[me] = 0
        makespan = max(makespan, end)
        if timeline is not None:
            timeline.record(me, start, end, f"chunk{chunk}")
        sim.schedule_at(end, lambda me=me: step(me))

    def step(me: int) -> None:
        dq = deques[me]
        if dq:
            # Pop own bottom: run one chunk.
            overhead[me] += config.pop_cycles
            run_chunk(me, dq.pop(), sim.now + config.pop_cycles)
            return
        if remaining == 0:
            return  # retire: nothing left anywhere
        victim = pick_victim(me)
        stats["attempts"] += 1
        overhead[me] += config.steal_cycles
        when = sim.now + config.steal_cycles
        if victim is not None and deques[victim]:
            vdq = deques[victim]
            take = max(1, int(np.ceil(len(vdq) * config.steal_fraction)))
            stolen = [vdq.popleft() for _ in range(take)]  # victim's top (FIFO end)
            stats["hits"] += 1
            stats["migrated"] += take
            failed[me] = 0
            if timeline is not None:
                timeline.record(me, sim.now, when, f"steal<{victim}")
            if tracer is not None:
                tracer.sim_instant(
                    "steal",
                    cat="steal",
                    at=when,
                    track=1 + me,
                    thief=me,
                    victim=victim,
                    chunks=take,
                )
            # The thief takes one stolen chunk into its hands immediately
            # (it cannot be re-stolen) and queues the rest — this is what
            # guarantees progress: every successful steal executes work.
            for extra in stolen[1:]:
                dq.appendleft(extra)
            run_chunk(me, stolen[0], when + config.pop_cycles)
            overhead[me] += config.pop_cycles
        else:
            failed[me] += 1
            if tracer is not None:
                tracer.sim_instant(
                    "steal-fail",
                    cat="steal",
                    at=when,
                    track=1 + me,
                    thief=me,
                    victim=-1 if victim is None else victim,
                )
            if failed[me] >= config.max_failed_attempts:
                return  # give up; stragglers finish without this worker
            sim.schedule_at(when, lambda me=me: step(me))

    for me in range(w):
        sim.schedule_at(0.0, lambda me=me: step(me))
    sim.run(max_events=50 * max(1, costs.size) + 200 * w * config.max_failed_attempts)

    return StealingResult(
        makespan_cycles=makespan,
        busy_cycles=busy,
        overhead_cycles=overhead,
        chunks_executed=executed,
        steal_attempts=stats["attempts"],
        steals_succeeded=stats["hits"],
        chunks_migrated=stats["migrated"],
        timeline=timeline,
    )

"""Dynamic chunk fetch — the global-atomic-counter load balancer.

The middle ground between static slabs and full work stealing: persistent
workers repeatedly fetch the next chunk index from a single global atomic
counter. Balancing is as good as greedy list scheduling at chunk
granularity, but every fetch pays the atomic round-trip, and the single
counter is a contention hot-spot at small chunk sizes — which is exactly
the trade-off experiment E9's chunk-size sweep exposes.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..gpusim.trace import Timeline
from .workstealing import StealingResult

__all__ = ["simulate_dynamic_fetch"]


def simulate_dynamic_fetch(
    chunk_cycles: np.ndarray,
    num_workers: int,
    *,
    atomic_cycles: float = 64.0,
    contention_factor: float = 0.5,
    record_timeline: bool = False,
) -> StealingResult:
    """Greedy chunk fetch from one global counter.

    Each fetch costs ``atomic_cycles`` plus a contention term that grows
    with the number of workers hammering the counter
    (``contention_factor * num_workers`` cycles), serialized before the
    chunk executes. Chunks are taken in index order by whichever worker
    frees up first — deterministic greedy list scheduling.
    """
    costs = np.asarray(chunk_cycles, dtype=np.float64).ravel()
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if costs.size and costs.min() < 0:
        raise ValueError("chunk costs must be non-negative")
    if atomic_cycles < 0 or contention_factor < 0:
        raise ValueError("overheads must be non-negative")

    fetch_cost = atomic_cycles + contention_factor * num_workers
    timeline = Timeline(num_workers) if record_timeline else None

    busy = np.zeros(num_workers, dtype=np.float64)
    overhead = np.zeros(num_workers, dtype=np.float64)
    executed = np.zeros(num_workers, dtype=np.int64)
    heap: list[tuple[float, int]] = [(0.0, p) for p in range(num_workers)]
    heapq.heapify(heap)
    makespan = 0.0
    for i, cost in enumerate(costs):
        free_at, worker = heapq.heappop(heap)
        start = free_at + fetch_cost
        end = start + cost
        overhead[worker] += fetch_cost
        busy[worker] += cost
        executed[worker] += 1
        makespan = max(makespan, end)
        if timeline is not None:
            timeline.record(worker, start, end, f"chunk{i}")
        heapq.heappush(heap, (end, worker))

    return StealingResult(
        makespan_cycles=makespan,
        busy_cycles=busy,
        overhead_cycles=overhead,
        chunks_executed=executed,
        steal_attempts=0,
        steals_succeeded=0,
        chunks_migrated=0,
        timeline=timeline,
    )

"""Load-balancing techniques: static partitioning, dynamic fetch, stealing."""

from .donation import DonationConfig, simulate_work_donation
from .dynamic import simulate_dynamic_fetch
from .partition import (
    chunk_costs,
    chunk_ranges,
    cost_balanced_partition,
    degree_bins,
    partition_by_threshold,
    static_partition,
)
from .workstealing import (
    StealingConfig,
    StealingResult,
    simulate_static_persistent,
    simulate_work_stealing,
)

__all__ = [
    "DonationConfig",
    "simulate_work_donation",
    "simulate_dynamic_fetch",
    "chunk_costs",
    "chunk_ranges",
    "cost_balanced_partition",
    "degree_bins",
    "partition_by_threshold",
    "static_partition",
    "StealingConfig",
    "StealingResult",
    "simulate_static_persistent",
    "simulate_work_stealing",
]

"""Work donation — the sender-initiated alternative to work stealing.

Where stealing is *receiver-initiated* (idle workers probe victims),
donation is *sender-initiated*: a worker whose private deque grows past
a threshold pushes its surplus half into a shared overflow queue; idle
workers drain the overflow with one atomic pop instead of probing peers.
Donation trades steal-probe traffic for overflow-queue contention and a
donation cost on the busy worker's critical path — the classic pair the
load-balancing literature contrasts, reproduced here so E12 can compare
them under identical chunk costs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..gpusim.events import EventSimulator
from ..gpusim.trace import Timeline
from .workstealing import StealingResult

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = ["DonationConfig", "simulate_work_donation"]


@dataclass(frozen=True)
class DonationConfig:
    """Tuning knobs of the donation runtime.

    A worker donates when its deque holds more than
    ``donate_threshold`` chunks, moving half (oldest first) to the
    overflow queue at ``donate_cycles``; idle workers pop one overflow
    chunk for ``fetch_cycles``.
    """

    num_workers: int
    donate_threshold: int = 4
    donate_cycles: float = 200.0
    fetch_cycles: float = 100.0
    pop_cycles: float = 8.0
    retry_cycles: float = 200.0
    max_failed_attempts: int = 64

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.donate_threshold < 1:
            raise ValueError("donate_threshold must be >= 1")
        if min(self.donate_cycles, self.fetch_cycles, self.pop_cycles, self.retry_cycles) < 0:
            raise ValueError("overhead cycles must be non-negative")


def simulate_work_donation(
    chunk_cycles: np.ndarray,
    owner: np.ndarray,
    config: DonationConfig,
    *,
    record_timeline: bool = False,
    tracer: "Tracer | None" = None,
) -> StealingResult:
    """Event-driven donation run over pre-costed chunks.

    Returns a :class:`~repro.loadbalance.workstealing.StealingResult`
    for drop-in comparison; ``steal_attempts``/``steals_succeeded``
    count overflow fetch attempts/hits and ``chunks_migrated`` the
    donated chunks.

    With a :class:`~repro.obs.tracer.Tracer` attached, deque-to-overflow
    migrations land as ``"donate"`` instants and overflow pops as
    ``"overflow-fetch"`` (category ``"steal"``, so one trace viewer
    track shows both balancers' migrations). Tracing is observation
    only: it never changes the schedule or the reported cycles.
    """
    costs = np.asarray(chunk_cycles, dtype=np.float64).ravel()
    who = np.asarray(owner, dtype=np.int64).ravel()
    if costs.shape != who.shape:
        raise ValueError("chunk_cycles and owner must align")
    if costs.size and costs.min() < 0:
        raise ValueError("chunk costs must be non-negative")
    w = config.num_workers
    if who.size and (who.min() < 0 or who.max() >= w):
        raise ValueError("owner out of range")

    sim = EventSimulator()
    timeline = Timeline(w) if record_timeline else None
    deques: list[deque[int]] = [deque() for _ in range(w)]
    for idx in np.argsort(who, kind="stable"):
        deques[who[idx]].append(int(idx))
    overflow: deque[int] = deque()
    remaining = costs.size

    busy = np.zeros(w, dtype=np.float64)
    overhead = np.zeros(w, dtype=np.float64)
    executed = np.zeros(w, dtype=np.int64)
    failed = np.zeros(w, dtype=np.int64)
    stats = {"attempts": 0, "hits": 0, "migrated": 0}
    makespan = 0.0

    def run_chunk(me: int, chunk: int, start: float) -> None:
        nonlocal remaining, makespan
        remaining -= 1
        end = start + costs[chunk]
        busy[me] += costs[chunk]
        executed[me] += 1
        failed[me] = 0
        makespan = max(makespan, end)
        if timeline is not None:
            timeline.record(me, start, end, f"chunk{chunk}")
        sim.schedule_at(end, lambda me=me: step(me))

    def step(me: int) -> None:
        dq = deques[me]
        now = sim.now
        if dq:
            if len(dq) > config.donate_threshold:
                # push the oldest half to the overflow queue
                give = len(dq) // 2
                for _ in range(give):
                    overflow.append(dq.popleft())
                stats["migrated"] += give
                overhead[me] += config.donate_cycles
                now += config.donate_cycles
                if timeline is not None:
                    timeline.record(me, sim.now, now, f"donate{give}")
                if tracer is not None:
                    tracer.sim_instant(
                        "donate", cat="steal", at=now, track=1 + me,
                        donor=me, chunks=give,
                    )
            overhead[me] += config.pop_cycles
            run_chunk(me, dq.pop(), now + config.pop_cycles)
            return
        if overflow:
            stats["attempts"] += 1
            stats["hits"] += 1
            overhead[me] += config.fetch_cycles
            if tracer is not None:
                tracer.sim_instant(
                    "overflow-fetch", cat="steal",
                    at=now + config.fetch_cycles, track=1 + me, thief=me,
                )
            run_chunk(me, overflow.popleft(), now + config.fetch_cycles)
            return
        if remaining == 0:
            return  # retire
        stats["attempts"] += 1
        overhead[me] += config.retry_cycles
        failed[me] += 1
        if failed[me] >= config.max_failed_attempts:
            return
        sim.schedule_at(now + config.retry_cycles, lambda me=me: step(me))

    for me in range(w):
        sim.schedule_at(0.0, lambda me=me: step(me))
    sim.run(max_events=50 * max(1, costs.size) + 200 * w * config.max_failed_attempts)

    return StealingResult(
        makespan_cycles=makespan,
        busy_cycles=busy,
        overhead_cycles=overhead,
        chunks_executed=executed,
        steal_attempts=stats["attempts"],
        steals_succeeded=stats["hits"],
        chunks_migrated=stats["migrated"],
        timeline=timeline,
    )

"""Compressed-sparse-row graph — the device-side data structure.

Every GPU kernel in the paper reads the graph as two flat arrays
(``row_offsets`` / ``column_indices`` in OpenCL terms). :class:`CSRGraph`
is exactly that representation, immutable once built, with numpy arrays
that the simulated kernels index vectorized.

Graphs are **undirected simple graphs**: the adjacency is stored
symmetrically (each undirected edge appears in both endpoint's neighbor
list), self-loops are rejected, and duplicate edges are merged at build
time. Neighbor lists are sorted ascending, which mirrors what a real
implementation gets from a sorted-CSR sparse matrix and makes membership
tests ``O(log d)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable undirected simple graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; neighbor list of vertex ``v``
        is ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int32`` array of length ``2 * num_edges`` holding the
        concatenated, ascending-sorted neighbor lists.
    validate:
        When true (default), check structural invariants (monotone
        ``indptr``, in-range sorted unique neighbors, symmetry, no
        self-loops). Disable only for trusted inputs on hot paths.
    """

    __slots__ = ("_indptr", "_indices", "_n")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        if indptr.ndim != 1 or indptr.size == 0:
            raise ValueError("indptr must be a 1-D array of length n + 1")
        if indices.ndim != 1:
            raise ValueError("indices must be a 1-D array")
        self._indptr = indptr
        self._indices = indices
        self._n = int(indptr.size - 1)
        if validate:
            self._check_invariants()
        # Freeze the buffers: kernels take views, never copies.
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @staticmethod
    def from_edges(
        sources: Sequence[int] | np.ndarray,
        targets: Sequence[int] | np.ndarray,
        num_vertices: int | None = None,
    ) -> "CSRGraph":
        """Build from parallel edge-endpoint arrays.

        Edges are treated as undirected; duplicates (in either
        orientation) are merged and self-loops dropped. ``num_vertices``
        defaults to ``max(endpoint) + 1`` (0 for an empty edge list).
        """
        u = np.asarray(sources, dtype=np.int64).ravel()
        v = np.asarray(targets, dtype=np.int64).ravel()
        if u.shape != v.shape:
            raise ValueError("sources and targets must have the same length")
        if u.size and (u.min() < 0 or v.min() < 0):
            raise ValueError("vertex ids must be non-negative")
        if num_vertices is None:
            num_vertices = int(max(u.max(initial=-1), v.max(initial=-1)) + 1)
        elif u.size and max(u.max(), v.max()) >= num_vertices:
            raise ValueError("edge endpoint exceeds num_vertices")
        n = int(num_vertices)

        keep = u != v  # drop self-loops
        u, v = u[keep], v[keep]
        # Canonicalize, dedupe, then symmetrize.
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        if lo.size:
            key = lo * n + hi
            _, first = np.unique(key, return_index=True)
            lo, hi = lo[first], hi[first]
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])

        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        if n > np.iinfo(np.int32).max:
            raise ValueError("num_vertices exceeds int32 neighbor-id capacity")
        # Guarded above: every id is < n <= int32 max.
        return CSRGraph(indptr, dst.astype(np.int32), validate=False)  # check: allow(RC008)

    @staticmethod
    def from_scipy(matrix) -> "CSRGraph":
        """Build from any scipy sparse matrix (pattern only).

        The matrix is symmetrized (``A | A.T``) and its diagonal dropped,
        so rectangular inputs are rejected.
        """
        import scipy.sparse as sp

        mat = sp.csr_matrix(matrix)
        if mat.shape[0] != mat.shape[1]:
            raise ValueError("adjacency matrix must be square")
        coo = mat.tocoo()
        return CSRGraph.from_edges(coo.row, coo.col, num_vertices=mat.shape[0])

    @staticmethod
    def from_adjacency(neighbors: Sequence[Iterable[int]]) -> "CSRGraph":
        """Build from a per-vertex neighbor-list sequence."""
        sources: list[int] = []
        targets: list[int] = []
        for u, nbrs in enumerate(neighbors):
            for w in nbrs:
                sources.append(u)
                targets.append(int(w))
        return CSRGraph.from_edges(sources, targets, num_vertices=len(neighbors))

    @staticmethod
    def from_networkx(graph) -> "CSRGraph":
        """Build from a :mod:`networkx` graph (nodes must be 0..n-1)."""
        n = graph.number_of_nodes()
        edges = np.asarray(list(graph.edges()), dtype=np.int64)
        if edges.size == 0:
            return CSRGraph.empty(n)
        return CSRGraph.from_edges(edges[:, 0], edges[:, 1], num_vertices=n)

    @staticmethod
    def empty(num_vertices: int) -> "CSRGraph":
        """Graph with ``num_vertices`` isolated vertices."""
        return CSRGraph(
            np.zeros(int(num_vertices) + 1, dtype=np.int64),
            np.empty(0, dtype=np.int32),
            validate=False,
        )

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def _check_invariants(self) -> None:
        indptr, indices, n = self._indptr, self._indices, self._n
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("neighbor index out of range")
        starts = indptr[:-1]
        ends = indptr[1:]
        # Sorted + unique within each list: indices must strictly increase
        # except exactly at list boundaries.
        if indices.size > 1:
            rises = np.flatnonzero(np.diff(indices.astype(np.int64)) <= 0) + 1
            boundary = set(starts[starts > 0].tolist())
            for pos in rises:
                if int(pos) not in boundary:
                    raise ValueError("neighbor lists must be sorted and duplicate-free")
        # No self loops.
        owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        if np.any(owner == indices):
            raise ValueError("self-loops are not allowed")
        # Symmetry: (u, v) present iff (v, u) present.
        key_fwd = owner * n + indices.astype(np.int64)
        key_rev = indices.astype(np.int64) * n + owner
        if not np.array_equal(np.sort(key_fwd), np.sort(key_rev)):
            raise ValueError("adjacency must be symmetric (undirected graph)")
        del ends

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def indptr(self) -> np.ndarray:
        """Row-offset array (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Flat neighbor array (read-only view)."""
        return self._indices

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._indices.size // 2

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries, ``2 * num_edges``."""
        return int(self._indices.size)

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex degree array (``int64``, computed view-free)."""
        return np.diff(self._indptr)

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max(initial=0))

    @property
    def mean_degree(self) -> float:
        return float(self.degrees.mean()) if self._n else 0.0

    def degree(self, vertex: int) -> int:
        self._check_vertex(vertex)
        return int(self._indptr[vertex + 1] - self._indptr[vertex])

    def neighbors(self, vertex: int) -> np.ndarray:
        """Sorted neighbor list of ``vertex`` (read-only view)."""
        self._check_vertex(vertex)
        return self._indices[self._indptr[vertex] : self._indptr[vertex + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test in ``O(log deg(u))``."""
        self._check_vertex(u)
        self._check_vertex(v)
        nbrs = self.neighbors(u)
        pos = int(np.searchsorted(nbrs, v))
        return pos < nbrs.size and int(nbrs[pos]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once, as ``(u, v)`` with ``u < v``."""
        owner = np.repeat(
            np.arange(self._n, dtype=np.int64), np.diff(self._indptr)
        )
        mask = owner < self._indices
        for u, v in zip(owner[mask], self._indices[mask], strict=True):
            yield int(u), int(v)

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Undirected edge endpoints as two arrays with ``u < v``."""
        owner = np.repeat(
            np.arange(self._n, dtype=np.int64), np.diff(self._indptr)
        )
        mask = owner < self._indices
        return owner[mask], self._indices[mask].astype(np.int64)

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self._n:
            raise IndexError(f"vertex {vertex} out of range [0, {self._n})")

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------

    def permute(self, permutation: np.ndarray) -> "CSRGraph":
        """Relabel vertices: new id of vertex ``v`` is ``permutation[v]``.

        ``permutation`` must be a bijection on ``range(n)``.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (self._n,):
            raise ValueError("permutation must have length num_vertices")
        check = np.zeros(self._n, dtype=bool)
        if perm.size and (perm.min() < 0 or perm.max() >= self._n):
            raise ValueError("permutation values out of range")
        check[perm] = True
        if not check.all():
            raise ValueError("permutation must be a bijection")
        u, v = self.edge_array()
        return CSRGraph.from_edges(perm[u], perm[v], num_vertices=self._n)

    def subgraph(self, vertices: np.ndarray) -> "CSRGraph":
        """Induced subgraph; kept vertices are renumbered in given order."""
        keep = np.asarray(vertices, dtype=np.int64)
        if keep.size != np.unique(keep).size:
            raise ValueError("vertex selection must not contain duplicates")
        if keep.size and (keep.min() < 0 or keep.max() >= self._n):
            raise ValueError("vertex selection out of range")
        newid = np.full(self._n, -1, dtype=np.int64)
        newid[keep] = np.arange(keep.size)
        u, v = self.edge_array()
        mask = (newid[u] >= 0) & (newid[v] >= 0)
        return CSRGraph.from_edges(
            newid[u[mask]], newid[v[mask]], num_vertices=keep.size
        )

    def to_scipy(self):
        """Pattern adjacency as ``scipy.sparse.csr_matrix`` of ones."""
        import scipy.sparse as sp

        data = np.ones(self._indices.size, dtype=np.int8)
        return sp.csr_matrix(
            (data, self._indices.copy(), self._indptr.copy()),
            shape=(self._n, self._n),
        )

    def to_networkx(self):
        """Convert to :class:`networkx.Graph`."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        u, v = self.edge_array()
        g.add_edges_from(zip(u.tolist(), v.tolist(), strict=True))
        return g

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return np.array_equal(self._indptr, other._indptr) and np.array_equal(
            self._indices, other._indices
        )

    def __hash__(self) -> int:
        return hash((self._n, self._indices.size, self._indices.tobytes()[:256]))

    def __repr__(self) -> str:
        return (
            f"CSRGraph(n={self._n}, m={self.num_edges}, "
            f"max_deg={self.max_degree})"
        )

    def __len__(self) -> int:
        return self._n

"""Synthetic graph generators — the input suite.

The paper characterizes coloring behavior across *graph structures*:
degree-skewed social/web-like graphs (where load imbalance bites) versus
near-regular meshes and road networks (where it does not). Its inputs come
from the Pannotia suite / SuiteSparse; those exact files are not
redistributable here, so this module provides deterministic synthetic
stand-ins for each structural class:

==================  =====================================================
paper input class   stand-in
==================  =====================================================
social / citation   :func:`barabasi_albert`, :func:`powerlaw_cluster`
web / Kronecker     :func:`rmat` (Graph500-style R-MAT)
road networks       :func:`delaunay_mesh`, :func:`grid_2d`
FEM / circuit       :func:`grid_3d`, :func:`random_regular`
uniform random      :func:`erdos_renyi`, :func:`random_geometric`
small-world         :func:`watts_strogatz`
==================  =====================================================

All generators take an integer ``seed`` and are fully deterministic; all
return :class:`~repro.graphs.csr.CSRGraph`.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "rmat",
    "barabasi_albert",
    "powerlaw_cluster",
    "grid_2d",
    "grid_3d",
    "delaunay_mesh",
    "random_geometric",
    "watts_strogatz",
    "random_regular",
    "star",
    "clique",
    "path",
    "cycle",
    "complete_bipartite",
]


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# random models
# ----------------------------------------------------------------------


def erdos_renyi(n: int, *, avg_degree: float = 8.0, seed: int = 0) -> CSRGraph:
    """G(n, m) uniform random graph with ``m ≈ n * avg_degree / 2`` edges.

    Sampling is by edge keys (sparse regime), so ``avg_degree`` must be
    far below ``n``; duplicates are merged, which loses a negligible
    fraction of edges.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if avg_degree < 0 or avg_degree >= n:
        raise ValueError("avg_degree must be in [0, n)")
    rng = _rng(seed)
    m = int(round(n * avg_degree / 2))
    if n < 2 or m == 0:
        return CSRGraph.empty(n)
    # Sample exactly m endpoint pairs; self-loop/duplicate losses are a
    # negligible fraction in the sparse regime this targets.
    u = rng.integers(0, n, size=m)
    v = rng.integers(0, n, size=m)
    return CSRGraph.from_edges(u, v, num_vertices=n)


def rmat(
    scale: int,
    *,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> CSRGraph:
    """Graph500-style R-MAT / Kronecker graph with ``2**scale`` vertices.

    Each edge descends ``scale`` levels of the recursive 2×2 partition
    with probabilities ``(a, b, c, d=1-a-b-c)``. Defaults are the
    Graph500 parameters, producing a heavily degree-skewed graph — the
    canonical worst case for SIMT load imbalance.
    """
    if scale <= 0 or scale > 30:
        raise ValueError("scale must be in (0, 30]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("R-MAT probabilities must be non-negative")
    rng = _rng(seed)
    n = 1 << scale
    m = n * edge_factor
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    for _ in range(scale):
        r = rng.random(m)
        right = r >= a + b  # quadrants c or d: row bit set
        # quadrant b, or quadrant d: column bit set
        col_bit = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        u = (u << 1) | right.astype(np.int64)
        v = (v << 1) | col_bit.astype(np.int64)
    return CSRGraph.from_edges(u, v, num_vertices=n)


def barabasi_albert(n: int, *, attach: int = 4, seed: int = 0) -> CSRGraph:
    """Preferential-attachment power-law graph.

    Each arriving vertex attaches to ``attach`` existing vertices chosen
    proportionally to degree (repeated-endpoint trick: sample uniformly
    from the running edge-endpoint list).
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if n <= attach:
        raise ValueError("n must exceed attach")
    rng = _rng(seed)
    # Seed clique of attach + 1 vertices keeps early degrees nonzero.
    seed_n = attach + 1
    src: list[np.ndarray] = []
    dst: list[np.ndarray] = []
    iu, iv = np.triu_indices(seed_n, k=1)
    src.append(iu.astype(np.int64))
    dst.append(iv.astype(np.int64))
    # endpoint pool grows as edges are added; preallocate worst case
    pool = np.empty(2 * (iu.size + (n - seed_n) * attach), dtype=np.int64)
    pool[: 2 * iu.size : 2] = iu
    pool[1 : 2 * iu.size : 2] = iv
    filled = 2 * iu.size
    for newv in range(seed_n, n):
        picks = pool[rng.integers(0, filled, size=attach)]
        picks = np.unique(picks)
        cnt = picks.size
        src.append(np.full(cnt, newv, dtype=np.int64))
        dst.append(picks)
        pool[filled : filled + cnt] = newv
        pool[filled + cnt : filled + 2 * cnt] = picks
        filled += 2 * cnt
    return CSRGraph.from_edges(
        np.concatenate(src), np.concatenate(dst), num_vertices=n
    )


def powerlaw_cluster(
    n: int, *, attach: int = 4, triangle_p: float = 0.5, seed: int = 0
) -> CSRGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert` but each preferential attachment is
    followed, with probability ``triangle_p``, by a triangle-closing step
    (connect to a random neighbor of the previous target). Stand-in for
    clustered social/co-authorship networks.
    """
    if not 0.0 <= triangle_p <= 1.0:
        raise ValueError("triangle_p must be in [0, 1]")
    if attach < 1 or n <= attach:
        raise ValueError("need n > attach >= 1")
    rng = _rng(seed)
    adj: list[list[int]] = [[] for _ in range(n)]

    def add(u: int, v: int) -> None:
        adj[u].append(v)
        adj[v].append(u)

    pool: list[int] = []
    seed_n = attach + 1
    for i in range(seed_n):
        for j in range(i + 1, seed_n):
            add(i, j)
            pool += [i, j]
    for newv in range(seed_n, n):
        targets: set[int] = set()
        last = -1
        while len(targets) < attach:
            cand = (
                int(adj[last][rng.integers(0, len(adj[last]))])
                if last >= 0 and adj[last] and rng.random() < triangle_p
                else int(pool[rng.integers(0, len(pool))])
            )
            if cand != newv and cand not in targets:
                targets.add(cand)
                last = cand
        for t in targets:
            add(newv, t)
            pool += [newv, t]
    return CSRGraph.from_adjacency(adj)


# ----------------------------------------------------------------------
# meshes and spatial graphs
# ----------------------------------------------------------------------


def grid_2d(rows: int, cols: int, *, diagonals: bool = False) -> CSRGraph:
    """Regular 2-D lattice (4-connected; 8-connected with ``diagonals``)."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    pairs = [
        (idx[:, :-1], idx[:, 1:]),  # horizontal
        (idx[:-1, :], idx[1:, :]),  # vertical
    ]
    if diagonals:
        pairs.append((idx[:-1, :-1], idx[1:, 1:]))
        pairs.append((idx[:-1, 1:], idx[1:, :-1]))
    u = np.concatenate([p[0].ravel() for p in pairs])
    v = np.concatenate([p[1].ravel() for p in pairs])
    return CSRGraph.from_edges(u, v, num_vertices=rows * cols)


def grid_3d(nx: int, ny: int, nz: int) -> CSRGraph:
    """Regular 3-D lattice, 6-connected — FEM/circuit stand-in."""
    if min(nx, ny, nz) <= 0:
        raise ValueError("dimensions must be positive")
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    pairs = [
        (idx[:-1, :, :], idx[1:, :, :]),
        (idx[:, :-1, :], idx[:, 1:, :]),
        (idx[:, :, :-1], idx[:, :, 1:]),
    ]
    u = np.concatenate([p[0].ravel() for p in pairs])
    v = np.concatenate([p[1].ravel() for p in pairs])
    return CSRGraph.from_edges(u, v, num_vertices=nx * ny * nz)


def delaunay_mesh(n: int, *, seed: int = 0) -> CSRGraph:
    """Delaunay triangulation of ``n`` uniform random points.

    Planar, near-constant degree (~6) — the standard stand-in for road
    networks and unstructured 2-D meshes (the ``delaunay_nXX`` family in
    the DIMACS/SuiteSparse collections).
    """
    if n < 3:
        raise ValueError("need at least 3 points")
    from scipy.spatial import Delaunay

    rng = _rng(seed)
    pts = rng.random((n, 2))
    tri = Delaunay(pts)
    s = tri.simplices
    u = np.concatenate([s[:, 0], s[:, 1], s[:, 2]])
    v = np.concatenate([s[:, 1], s[:, 2], s[:, 0]])
    return CSRGraph.from_edges(u, v, num_vertices=n)


def random_geometric(n: int, *, radius: float | None = None, seed: int = 0) -> CSRGraph:
    """Random geometric graph on the unit square.

    ``radius`` defaults to the value giving expected average degree ≈ 8.
    Uses a KD-tree, so it scales to large ``n``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    from scipy.spatial import cKDTree

    if radius is None:
        radius = float(np.sqrt(9.0 / (np.pi * n)))
    rng = _rng(seed)
    pts = rng.random((n, 2))
    tree = cKDTree(pts)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    if pairs.size == 0:
        return CSRGraph.empty(n)
    return CSRGraph.from_edges(pairs[:, 0], pairs[:, 1], num_vertices=n)


def watts_strogatz(n: int, *, k: int = 6, rewire_p: float = 0.1, seed: int = 0) -> CSRGraph:
    """Small-world ring lattice with random rewiring.

    Each vertex starts connected to its ``k`` nearest ring neighbors
    (``k`` even); each edge's far endpoint is rewired uniformly at random
    with probability ``rewire_p``.
    """
    if k % 2 or k <= 0:
        raise ValueError("k must be positive and even")
    if k >= n:
        raise ValueError("k must be < n")
    if not 0.0 <= rewire_p <= 1.0:
        raise ValueError("rewire_p must be in [0, 1]")
    rng = _rng(seed)
    base = np.arange(n, dtype=np.int64)
    us, vs = [], []
    for off in range(1, k // 2 + 1):
        us.append(base)
        vs.append((base + off) % n)
    u = np.concatenate(us)
    v = np.concatenate(vs)
    rewire = rng.random(u.size) < rewire_p
    v = v.copy()
    v[rewire] = rng.integers(0, n, size=int(rewire.sum()))
    return CSRGraph.from_edges(u, v, num_vertices=n)


def random_regular(n: int, *, degree: int = 8, seed: int = 0, max_tries: int = 50) -> CSRGraph:
    """Random (near-)``degree``-regular graph via the configuration model.

    Stubs are paired randomly; self-loops and duplicate pairings are
    simply dropped, so a few vertices may fall short of ``degree`` — the
    structure stays essentially regular, which is what the load-balance
    experiments need. Retries until ≥ 99 % of the target edges survive.
    """
    if degree <= 0 or degree >= n:
        raise ValueError("need 0 < degree < n")
    if (n * degree) % 2:
        raise ValueError("n * degree must be even")
    rng = _rng(seed)
    target = n * degree // 2
    best: CSRGraph | None = None
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n, dtype=np.int64), degree)
        rng.shuffle(stubs)
        g = CSRGraph.from_edges(stubs[0::2], stubs[1::2], num_vertices=n)
        if best is None or g.num_edges > best.num_edges:
            best = g
        if g.num_edges >= 0.99 * target:
            return g
    assert best is not None
    return best


# ----------------------------------------------------------------------
# deterministic micro-structures (used heavily by tests)
# ----------------------------------------------------------------------


def star(leaves: int) -> CSRGraph:
    """Vertex 0 connected to ``leaves`` leaf vertices."""
    if leaves < 0:
        raise ValueError("leaves must be non-negative")
    if leaves == 0:
        return CSRGraph.empty(1)
    v = np.arange(1, leaves + 1, dtype=np.int64)
    return CSRGraph.from_edges(np.zeros(leaves, dtype=np.int64), v)


def clique(n: int) -> CSRGraph:
    """Complete graph K_n."""
    if n <= 0:
        raise ValueError("n must be positive")
    u, v = np.triu_indices(n, k=1)
    return CSRGraph.from_edges(u, v, num_vertices=n)


def path(n: int) -> CSRGraph:
    """Path graph P_n."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return CSRGraph.empty(1)
    u = np.arange(n - 1, dtype=np.int64)
    return CSRGraph.from_edges(u, u + 1, num_vertices=n)


def cycle(n: int) -> CSRGraph:
    """Cycle graph C_n (n >= 3)."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    u = np.arange(n, dtype=np.int64)
    return CSRGraph.from_edges(u, (u + 1) % n, num_vertices=n)


def complete_bipartite(a: int, b: int) -> CSRGraph:
    """Complete bipartite graph K_{a,b}."""
    if a <= 0 or b <= 0:
        raise ValueError("both sides must be positive")
    u = np.repeat(np.arange(a, dtype=np.int64), b)
    v = np.tile(np.arange(a, a + b, dtype=np.int64), a)
    return CSRGraph.from_edges(u, v, num_vertices=a + b)

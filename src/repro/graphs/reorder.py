"""Vertex reordering — the layout lever of the performance-factor study.

The order vertices are numbered *is* the order lanes are packed into
wavefronts (thread id = vertex id under the thread mapping), so
relabeling the graph changes divergence and locality without touching
the algorithm. This module provides the classic orders:

* :func:`bfs_order` — breadth-first layout (locality for meshes),
* :func:`rcm_order` — reverse Cuthill–McKee (bandwidth minimization, the
  standard sparse-matrix layout),
* :func:`degree_order` — descending-degree layout (packs similar-degree
  vertices into the same wavefront — the static version of the
  executor's ``sort_by_degree``),
* :func:`random_order` — the adversarial control.

Each returns a permutation ``perm`` with ``perm[old] = new``, suitable
for :meth:`repro.graphs.csr.CSRGraph.permute`.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .csr import CSRGraph

__all__ = [
    "bfs_order",
    "rcm_order",
    "degree_order",
    "random_order",
    "apply_order",
    "bandwidth",
]


def _positions_to_perm(positions: np.ndarray) -> np.ndarray:
    """Convert a visit sequence (new→old) into a perm (old→new)."""
    perm = np.empty(positions.size, dtype=np.int64)
    perm[positions] = np.arange(positions.size, dtype=np.int64)
    return perm


def bfs_order(graph: CSRGraph, *, source: int | None = None) -> np.ndarray:
    """Breadth-first relabeling; components are visited by smallest id.

    ``source`` seeds the first component (default: vertex 0).
    """
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    sequence = np.empty(n, dtype=np.int64)
    pos = 0
    queue: deque[int] = deque()
    seeds = [source] if source is not None else []
    seed_iter = iter(range(n))

    def next_seed() -> int | None:
        for s in seeds:
            if not visited[s]:
                return s
        for s in seed_iter:
            if not visited[s]:
                return s
        return None

    while pos < n:
        s = next_seed()
        if s is None:
            break
        visited[s] = True
        queue.append(s)
        while queue:
            v = queue.popleft()
            sequence[pos] = v
            pos += 1
            for w in graph.neighbors(v):
                w = int(w)
                if not visited[w]:
                    visited[w] = True
                    queue.append(w)
    return _positions_to_perm(sequence)


def rcm_order(graph: CSRGraph) -> np.ndarray:
    """Reverse Cuthill–McKee: BFS from a low-degree vertex, neighbors
    visited in ascending-degree order, sequence reversed."""
    n = graph.num_vertices
    deg = graph.degrees
    visited = np.zeros(n, dtype=bool)
    sequence: list[int] = []
    order_by_degree = np.argsort(deg, kind="stable")
    for seed in order_by_degree:
        seed = int(seed)
        if visited[seed]:
            continue
        visited[seed] = True
        queue: deque[int] = deque([seed])
        while queue:
            v = queue.popleft()
            sequence.append(v)
            nbrs = graph.neighbors(v)
            for w in nbrs[np.argsort(deg[nbrs], kind="stable")]:
                w = int(w)
                if not visited[w]:
                    visited[w] = True
                    queue.append(w)
    sequence.reverse()
    return _positions_to_perm(np.asarray(sequence, dtype=np.int64))


def degree_order(graph: CSRGraph, *, descending: bool = True) -> np.ndarray:
    """Relabel by degree (descending default — heavy wavefronts first)."""
    key = -graph.degrees if descending else graph.degrees
    sequence = np.argsort(key, kind="stable").astype(np.int64)
    return _positions_to_perm(sequence)


def random_order(graph: CSRGraph, *, seed: int = 0) -> np.ndarray:
    """Uniform random relabeling (destroys any locality)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_vertices).astype(np.int64)


def apply_order(graph: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Relabel ``graph`` by ``perm`` (alias of :meth:`CSRGraph.permute`)."""
    return graph.permute(perm)


def bandwidth(graph: CSRGraph) -> int:
    """Matrix bandwidth ``max |u - v|`` over edges (0 for edgeless)."""
    u, v = graph.edge_array()
    if u.size == 0:
        return 0
    return int(np.abs(u - v).max())

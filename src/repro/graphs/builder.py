"""Mutable graph builder — assemble a CSR graph incrementally.

:class:`~repro.graphs.csr.CSRGraph` is immutable by design (kernels take
read-only views). When a graph arrives edge-by-edge — a parser, a
generator with rejection steps, a mutation loop in a test —
:class:`GraphBuilder` buffers the stream and normalizes once at
:meth:`GraphBuilder.build`, amortizing the dedupe/symmetrize cost.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Buffered, chunked edge accumulator.

    ``add_edge`` appends to Python lists; every ``flush_at`` edges the
    buffer is folded into compact numpy blocks so memory stays bounded
    for long streams. Self-loops and duplicates are permitted on input
    and removed at :meth:`build`.
    """

    def __init__(self, num_vertices: int = 0, *, flush_at: int = 1 << 16) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        if flush_at <= 0:
            raise ValueError("flush_at must be positive")
        self._n = int(num_vertices)
        self._flush_at = int(flush_at)
        self._blocks_u: list[np.ndarray] = []
        self._blocks_v: list[np.ndarray] = []
        self._buf_u: list[int] = []
        self._buf_v: list[int] = []
        self._count = 0

    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_buffered_edges(self) -> int:
        """Edge records accepted so far (pre-dedupe)."""
        return self._count

    def add_vertex(self) -> int:
        """Reserve a new vertex id."""
        self._n += 1
        return self._n - 1

    def ensure_vertex(self, vertex: int) -> None:
        """Grow the vertex range to include ``vertex``."""
        if vertex < 0:
            raise ValueError("vertex ids must be non-negative")
        self._n = max(self._n, vertex + 1)

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Record an undirected edge (endpoints auto-grow the range)."""
        if u < 0 or v < 0:
            raise ValueError("vertex ids must be non-negative")
        self.ensure_vertex(max(u, v))
        self._buf_u.append(int(u))
        self._buf_v.append(int(v))
        self._count += 1
        if len(self._buf_u) >= self._flush_at:
            self._flush()
        return self

    def add_edges(self, pairs: Iterable[tuple[int, int]]) -> "GraphBuilder":
        """Record many edges."""
        for u, v in pairs:
            self.add_edge(int(u), int(v))
        return self

    def add_edge_arrays(self, u: np.ndarray, v: np.ndarray) -> "GraphBuilder":
        """Record parallel endpoint arrays (the fast path)."""
        uu = np.asarray(u, dtype=np.int64).ravel()
        vv = np.asarray(v, dtype=np.int64).ravel()
        if uu.shape != vv.shape:
            raise ValueError("endpoint arrays must align")
        if uu.size:
            if min(uu.min(), vv.min()) < 0:
                raise ValueError("vertex ids must be non-negative")
            self._n = max(self._n, int(max(uu.max(), vv.max())) + 1)
            self._blocks_u.append(uu.copy())
            self._blocks_v.append(vv.copy())
            self._count += uu.size
        return self

    def _flush(self) -> None:
        if self._buf_u:
            self._blocks_u.append(np.asarray(self._buf_u, dtype=np.int64))
            self._blocks_v.append(np.asarray(self._buf_v, dtype=np.int64))
            self._buf_u.clear()
            self._buf_v.clear()

    # ------------------------------------------------------------------

    def build(self, *, num_vertices: int | None = None) -> CSRGraph:
        """Normalize everything recorded so far into a CSR graph.

        The builder remains usable afterwards (building is
        non-destructive); ``num_vertices`` may widen the vertex range.
        """
        self._flush()
        n = self._n if num_vertices is None else max(self._n, int(num_vertices))
        if not self._blocks_u:
            return CSRGraph.empty(n)
        u = np.concatenate(self._blocks_u)
        v = np.concatenate(self._blocks_v)
        return CSRGraph.from_edges(u, v, num_vertices=n)

    def __repr__(self) -> str:
        return f"GraphBuilder(n={self._n}, buffered_edges={self._count})"

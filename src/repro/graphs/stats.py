"""Structural graph statistics — the datasets-table columns.

The paper's first table characterizes each input by size and degree
structure, because degree skew is what predicts load imbalance on a
SIMT machine. :func:`summarize` computes the full row; the individual
metrics are exposed for reuse by the imbalance experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .csr import CSRGraph

__all__ = [
    "GraphSummary",
    "summarize",
    "degree_histogram",
    "degree_skewness",
    "degree_cv",
    "gini_coefficient",
    "powerlaw_alpha_estimate",
    "connected_components",
    "clustering_coefficient_estimate",
    "core_numbers",
    "degeneracy",
]


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Counts of each degree value, index = degree."""
    return np.bincount(graph.degrees, minlength=1)


def degree_cv(graph: CSRGraph) -> float:
    """Coefficient of variation of the degree distribution.

    CV ≈ 0 for regular meshes; CV ≫ 1 for power-law graphs. This is the
    single best predictor of thread-per-vertex load imbalance.
    """
    deg = graph.degrees
    if deg.size == 0:
        return 0.0
    mean = deg.mean()
    if mean == 0:
        return 0.0
    return float(deg.std() / mean)


def degree_skewness(graph: CSRGraph) -> float:
    """Fisher skewness of the degree distribution (0 for symmetric)."""
    deg = graph.degrees.astype(np.float64)
    if deg.size == 0:
        return 0.0
    std = deg.std()
    if std == 0:
        return 0.0
    return float(((deg - deg.mean()) ** 3).mean() / std**3)


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (0 = equal, →1 = skewed)."""
    x = np.sort(np.asarray(values, dtype=np.float64))
    if x.size == 0:
        return 0.0
    if np.any(x < 0):
        raise ValueError("Gini coefficient needs non-negative values")
    total = x.sum()
    if total == 0:
        return 0.0
    n = x.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * x).sum() - (n + 1) * total) / (n * total))


def powerlaw_alpha_estimate(graph: CSRGraph, *, dmin: int = 2) -> float:
    """Maximum-likelihood power-law exponent of degrees ≥ ``dmin``.

    Uses the continuous Hill estimator; only meaningful when the tail is
    actually heavy. Returns ``nan`` if fewer than 10 vertices qualify.
    """
    deg = graph.degrees[graph.degrees >= dmin].astype(np.float64)
    if deg.size < 10:
        return float("nan")
    return float(1.0 + deg.size / np.log(deg / (dmin - 0.5)).sum())


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (labels are 0..k-1, BFS order)."""
    import scipy.sparse.csgraph as csg

    _, labels = csg.connected_components(graph.to_scipy(), directed=False)
    return labels


def clustering_coefficient_estimate(
    graph: CSRGraph, *, samples: int = 2000, seed: int = 0
) -> float:
    """Sampled average local clustering coefficient.

    Samples up to ``samples`` vertices with degree ≥ 2 and measures the
    fraction of closed neighbor pairs (exact per sampled vertex).
    """
    rng = np.random.default_rng(seed)
    deg = graph.degrees
    candidates = np.flatnonzero(deg >= 2)
    if candidates.size == 0:
        return 0.0
    if candidates.size > samples:
        candidates = rng.choice(candidates, size=samples, replace=False)
    total = 0.0
    for v in candidates:
        nbrs = graph.neighbors(int(v))
        d = nbrs.size
        closed = 0
        nbr_set = set(nbrs.tolist())
        for w in nbrs:
            closed += len(nbr_set.intersection(graph.neighbors(int(w)).tolist()))
        total += closed / (d * (d - 1))
    return float(total / candidates.size)


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """k-core number per vertex (Matula–Beck peeling).

    Vertex ``v``'s core number is the largest ``k`` such that ``v``
    belongs to a subgraph of minimum degree ``k``. The maximum over all
    vertices is the graph's :func:`degeneracy` — the greedy
    smallest-last color bound minus one.
    """
    import heapq

    n = graph.num_vertices
    deg = graph.degrees.astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    heap = [(int(d), v) for v, d in enumerate(deg)]
    heapq.heapify(heap)
    current = 0
    indptr, indices = graph.indptr, graph.indices
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != deg[v]:
            continue
        current = max(current, int(d))
        core[v] = current
        removed[v] = True
        for w in indices[indptr[v] : indptr[v + 1]]:
            w = int(w)
            if not removed[w]:
                deg[w] -= 1
                heapq.heappush(heap, (int(deg[w]), w))
    return core


def degeneracy(graph: CSRGraph) -> int:
    """Graph degeneracy (maximum core number; 0 for edgeless graphs)."""
    if graph.num_vertices == 0:
        return 0
    return int(core_numbers(graph).max())


@dataclass(frozen=True)
class GraphSummary:
    """One row of the datasets table (paper's Table 1 reconstruction)."""

    name: str
    num_vertices: int
    num_edges: int
    max_degree: int
    mean_degree: float
    degree_cv: float
    degree_gini: float
    degree_skewness: float
    num_components: int
    notes: str = field(default="")

    def as_row(self) -> dict[str, object]:
        """Plain-dict row for table rendering."""
        return {
            "graph": self.name,
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "d_max": self.max_degree,
            "d_avg": round(self.mean_degree, 2),
            "CV(d)": round(self.degree_cv, 3),
            "Gini(d)": round(self.degree_gini, 3),
            "skew(d)": round(self.degree_skewness, 2),
            "components": self.num_components,
        }


def summarize(graph: CSRGraph, name: str = "graph", *, notes: str = "") -> GraphSummary:
    """Compute the full datasets-table row for ``graph``."""
    labels = connected_components(graph) if graph.num_vertices else np.empty(0, int)
    ncomp = int(labels.max() + 1) if labels.size else 0
    return GraphSummary(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        mean_degree=graph.mean_degree,
        degree_cv=degree_cv(graph),
        degree_gini=gini_coefficient(graph.degrees),
        degree_skewness=degree_skewness(graph),
        num_components=ncomp,
        notes=notes,
    )

"""Experiment records — paper claim vs. measured outcome.

Each benchmark produces an :class:`ExperimentRecord` tying a
reconstructed paper artifact (table/figure) to the measured result and a
pass/fail verdict on the *shape* criterion (who wins, by what rough
factor). ``EXPERIMENTS.md`` is assembled from these records.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["ExperimentRecord", "render_markdown", "save_records", "load_records"]


@dataclass
class ExperimentRecord:
    """One experiment's reproduction outcome."""

    experiment_id: str  # e.g. "E6"
    paper_artifact: str  # e.g. "Fig: work-stealing speedup per graph"
    paper_claim: str  # the qualitative/quantitative claim being reproduced
    measured: str  # what this run measured
    shape_holds: bool  # did the qualitative shape reproduce?
    details: dict[str, object] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        return {
            "id": self.experiment_id,
            "artifact": self.paper_artifact,
            "claim": self.paper_claim,
            "measured": self.measured,
            "shape": "holds" if self.shape_holds else "DIVERGES",
        }


def render_markdown(records: list[ExperimentRecord]) -> str:
    """Render records as the EXPERIMENTS.md body."""
    lines = [
        "| Exp | Paper artifact | Paper claim | Measured | Shape |",
        "|-----|----------------|-------------|----------|-------|",
    ]
    for r in sorted(records, key=lambda r: r.experiment_id):
        shape = "✅ holds" if r.shape_holds else "❌ diverges"
        lines.append(
            f"| {r.experiment_id} | {r.paper_artifact} | {r.paper_claim} "
            f"| {r.measured} | {shape} |"
        )
    return "\n".join(lines)


def _json_default(obj):
    """Coerce numpy scalars (np.bool_, np.int64, np.float64) to JSON."""
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj)}")


def save_records(records: list[ExperimentRecord], path: str | Path) -> None:
    """Append records to a JSON-lines file (one record per line).

    Safe under concurrent benchmark processes: the batch is serialized
    first and written as one ``write`` call under an exclusive
    ``flock``, so parallel appenders cannot interleave partial lines.
    """
    if not records:
        return
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    payload = "".join(
        json.dumps(asdict(r), default=_json_default) + "\n" for r in records
    )
    with p.open("a") as fh:
        _flock_exclusive(fh)
        try:
            fh.write(payload)
            fh.flush()
        finally:
            _flock_release(fh)


def _flock_exclusive(fh) -> None:
    """Take an exclusive advisory lock (no-op where flock is missing)."""
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platform
        return
    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)


def _flock_release(fh) -> None:
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platform
        return
    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def load_records(path: str | Path) -> list[ExperimentRecord]:
    """Load records from a JSON-lines file (empty list if absent)."""
    p = Path(path)
    if not p.exists():
        return []
    records = []
    with p.open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(ExperimentRecord(**json.loads(line)))
    return records

"""Experiment records — paper claim vs. measured outcome.

Each benchmark produces an :class:`ExperimentRecord` tying a
reconstructed paper artifact (table/figure) to the measured result and a
pass/fail verdict on the *shape* criterion (who wins, by what rough
factor). ``EXPERIMENTS.md`` is assembled from these records.

The source of truth for records is the sqlite run database
(:mod:`repro.store`): benches upsert verdicts there, and
:func:`records_from_store` reads them back as plain
:class:`ExperimentRecord` views for rendering. The JSON-lines file
(``benchmarks/results/records.jsonl``) remains as a **deprecated export
shim** — :func:`save_records` / :func:`load_records` keep their exact
format and append semantics for existing consumers, and
``scripts/backfill_store.py`` imports historic lines into the store.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..store.db import RunStore

__all__ = [
    "ExperimentRecord",
    "render_markdown",
    "save_records",
    "load_records",
    "records_from_store",
]


@dataclass
class ExperimentRecord:
    """One experiment's reproduction outcome."""

    experiment_id: str  # e.g. "E6"
    paper_artifact: str  # e.g. "Fig: work-stealing speedup per graph"
    paper_claim: str  # the qualitative/quantitative claim being reproduced
    measured: str  # what this run measured
    shape_holds: bool  # did the qualitative shape reproduce?
    details: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_store_row(cls, row: dict[str, object]) -> "ExperimentRecord":
        """View one ``experiments`` table row as a record."""
        details = row.get("details", "{}")
        if isinstance(details, str):
            details = json.loads(details or "{}")
        return cls(
            experiment_id=str(row["experiment_id"]),
            paper_artifact=str(row.get("paper_artifact", "")),
            paper_claim=str(row.get("paper_claim", "")),
            measured=str(row.get("measured", "")),
            shape_holds=bool(row.get("shape_holds")),
            details=dict(details),
        )

    def as_row(self) -> dict[str, object]:
        return {
            "id": self.experiment_id,
            "artifact": self.paper_artifact,
            "claim": self.paper_claim,
            "measured": self.measured,
            "shape": "holds" if self.shape_holds else "DIVERGES",
        }


def records_from_store(
    store: "RunStore", *, scale: str | None = None
) -> list[ExperimentRecord]:
    """The newest verdict per experiment id, as record views.

    This is the query path ``EXPERIMENTS.md`` renders from
    (``scripts/render_experiments.py``).
    """
    return [
        ExperimentRecord.from_store_row(row)
        for row in store.experiments(scale=scale)
    ]


def render_markdown(records: list[ExperimentRecord]) -> str:
    """Render records as the EXPERIMENTS.md body."""
    lines = [
        "| Exp | Paper artifact | Paper claim | Measured | Shape |",
        "|-----|----------------|-------------|----------|-------|",
    ]
    for r in sorted(records, key=lambda r: r.experiment_id):
        shape = "✅ holds" if r.shape_holds else "❌ diverges"
        lines.append(
            f"| {r.experiment_id} | {r.paper_artifact} | {r.paper_claim} "
            f"| {r.measured} | {shape} |"
        )
    return "\n".join(lines)


def _json_default(obj):
    """Coerce numpy scalars (np.bool_, np.int64, np.float64) to JSON."""
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj)}")


def save_records(records: list[ExperimentRecord], path: str | Path) -> None:
    """Append records to a JSON-lines file (deprecated export shim).

    Safe under concurrent benchmark processes *and* crashes: the
    combined content (existing lines + this batch) is written to a
    temp file in the same directory and atomically renamed over the
    target, all under an exclusive ``flock`` on a sidecar lock file —
    a reader never observes a truncated trailing line, and parallel
    appenders cannot interleave or lose batches.
    """
    if not records:
        return
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    lock_path = p.with_name(p.name + ".lock")
    with lock_path.open("a") as lock:
        _flock_exclusive(lock)
        try:
            existing = p.read_bytes() if p.exists() else b""
            tmp = p.with_name(f".{p.name}.{os.getpid()}.tmp")
            # Records serialize straight into the temp file, so a bad
            # record (unserializable details) raises mid-write with the
            # lock held — the finally guarantees the orphan temp file
            # never survives, and the target is untouched either way.
            try:
                with tmp.open("wb") as fh:
                    fh.write(existing)
                    for r in records:
                        line = json.dumps(asdict(r), default=_json_default)
                        fh.write(line.encode() + b"\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, p)
            finally:
                tmp.unlink(missing_ok=True)
        finally:
            _flock_release(lock)


def _flock_exclusive(fh) -> None:
    """Take an exclusive advisory lock (no-op where flock is missing)."""
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platform
        return
    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)


def _flock_release(fh) -> None:
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platform
        return
    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def load_records(path: str | Path) -> list[ExperimentRecord]:
    """Load records from a JSON-lines file (empty list if absent).

    Tolerant of damage: a corrupt or truncated line (e.g. a crash
    mid-append under the pre-atomic writer) is skipped with a
    :class:`UserWarning` naming the line, never an exception — one bad
    line should not take down every consumer of the history.
    """
    p = Path(path)
    if not p.exists():
        return []
    records = []
    with p.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(ExperimentRecord(**json.loads(line)))
            except (json.JSONDecodeError, TypeError) as exc:
                warnings.warn(
                    f"{p}:{lineno}: skipping corrupt record line ({exc})",
                    stacklevel=2,
                )
    return records

"""Reporting: ASCII tables/series and experiment reproduction records."""

from .experiment import ExperimentRecord, load_records, render_markdown, save_records
from .gantt import render_busy_bars, render_gantt
from .report import run_report
from .tables import format_kv, format_series, format_table
from .trace_io import save_chrome_trace, timeline_to_trace_events

__all__ = [
    "render_busy_bars",
    "render_gantt",
    "run_report",
    "save_chrome_trace",
    "timeline_to_trace_events",
    "ExperimentRecord",
    "load_records",
    "render_markdown",
    "save_records",
    "format_kv",
    "format_series",
    "format_table",
]

"""Chrome trace-event export for execution timelines.

Writes a :class:`~repro.gpusim.trace.Timeline` as the Trace Event JSON
format that ``chrome://tracing`` / Perfetto load directly — one track
per pipe/CU, one complete event per interval. The practical way to eyeball
a work-stealing schedule.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..gpusim.trace import Timeline

__all__ = ["timeline_to_trace_events", "save_chrome_trace"]


def timeline_to_trace_events(
    timeline: Timeline,
    *,
    process_name: str = "gpusim",
    cycles_per_us: float = 1000.0,
) -> list[dict]:
    """Convert intervals to trace-event dicts (``ph: "X"`` complete events).

    Trace timestamps are microseconds; ``cycles_per_us`` scales simulated
    cycles onto that axis (the default keeps numbers readable rather than
    physically meaningful).
    """
    if cycles_per_us <= 0:
        raise ValueError("cycles_per_us must be positive")
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for pipe in range(timeline.num_pipes):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": pipe,
                "args": {"name": f"pipe {pipe}"},
            }
        )
    for pipe, start, end, tag in zip(
        timeline.pipes, timeline.starts, timeline.ends, timeline.tags, strict=True
    ):
        events.append(
            {
                "name": tag or "work",
                "cat": "sim",
                "ph": "X",
                "pid": 1,
                "tid": int(pipe),
                "ts": float(start) / cycles_per_us,
                "dur": float(end - start) / cycles_per_us,
            }
        )
    return events


def save_chrome_trace(
    timeline: Timeline,
    path: str | Path,
    *,
    process_name: str = "gpusim",
    cycles_per_us: float = 1000.0,
) -> None:
    """Write the timeline as a ``chrome://tracing``-loadable JSON file."""
    events = timeline_to_trace_events(
        timeline, process_name=process_name, cycles_per_us=cycles_per_us
    )
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}))

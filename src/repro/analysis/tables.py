"""Plain-text table/series rendering for benchmark reports.

Every benchmark prints the rows/series its paper table or figure would
contain; these helpers keep that output aligned, stable, and diff-able
(no external plotting dependencies — figures are emitted as the series
data that would be plotted).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if value is None:
        return "-"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render dict-rows as an aligned ASCII table.

    Column order follows ``columns`` when given, else the first row's
    key order; missing cells render as ``-``.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    grid = [[_cell(row.get(c)) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in grid)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths, strict=True))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in grid:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths, strict=True)))
    return "\n".join(lines)


def format_series(
    x: Iterable[object],
    ys: Mapping[str, Iterable[float]],
    *,
    x_name: str = "x",
    title: str | None = None,
) -> str:
    """Render figure data: one x column plus one column per series."""
    xs = list(x)
    names = list(ys.keys())
    cols = [x_name, *names]
    series = {k: list(v) for k, v in ys.items()}
    for k, v in series.items():
        if len(v) != len(xs):
            raise ValueError(f"series {k!r} length {len(v)} != x length {len(xs)}")
    rows = [
        {x_name: xs[i], **{k: series[k][i] for k in names}} for i in range(len(xs))
    ]
    return format_table(rows, title=title, columns=cols)


def format_kv(pairs: Mapping[str, object], *, title: str | None = None) -> str:
    """Render a key/value summary block."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    for k, v in pairs.items():
        lines.append(f"{k.ljust(width)} : {_cell(v)}")
    return "\n".join(lines)

"""Full-run report generation.

Combines a coloring result, the executor's counters, and the graph's
structure into one human-readable block — the "what happened and why"
view the CLI's ``report`` command prints and the imbalance example
builds by hand.
"""

from __future__ import annotations

from ..coloring.base import ColoringResult
from ..coloring.kernels import GPUExecutor
from ..graphs.csr import CSRGraph
from ..graphs.stats import summarize
from ..metrics import idle_fraction, imbalance_factor
from .gantt import render_busy_bars
from .tables import format_kv, format_table

__all__ = ["run_report"]


def run_report(
    graph: CSRGraph,
    result: ColoringResult,
    executor: GPUExecutor | None = None,
    *,
    graph_name: str = "graph",
    max_iteration_rows: int = 12,
) -> str:
    """Render a complete run report as text."""
    blocks: list[str] = []
    blocks.append(format_kv(summarize(graph, graph_name).as_row(), title="input"))
    blocks.append(format_kv(result.as_row(), title=f"result: {result.algorithm}"))

    if result.iterations:
        rows = []
        iters = result.iterations
        shown = iters[:max_iteration_rows]
        for it in shown:
            rows.append(
                {
                    "iter": it.index,
                    "active": it.active_vertices,
                    "colored": it.newly_colored,
                    "cycles": round(it.cycles, 1),
                    "simd_eff": round(it.simd_efficiency, 3)
                    if it.simd_efficiency is not None
                    else None,
                }
            )
        title = "iterations"
        if len(iters) > max_iteration_rows:
            title += f" (first {max_iteration_rows} of {len(iters)})"
        blocks.append(format_table(rows, title=title))

    if executor is not None:
        c = executor.counters
        row = c.as_row()
        row["achieved_GB/s"] = round(
            c.achieved_bandwidth_gbps(executor.device), 1
        )
        blocks.append(format_kv(row, title="execution counters"))

        # probe one full sweep for the per-CU load profile (the probe is
        # excluded from the counters so the report doesn't perturb them)
        saved = c
        try:
            from ..gpusim.counters import ExecutionCounters

            executor.counters = ExecutionCounters()
            probe = executor.time_iteration(graph.degrees, name="report-probe")
        finally:
            executor.counters = saved
        if probe.cu_busy is not None:
            blocks.append(
                format_kv(
                    {
                        "CU imbalance (max/mean)": round(
                            imbalance_factor(probe.cu_busy), 3
                        ),
                        "CU idle fraction": round(idle_fraction(probe.cu_busy), 3),
                    },
                    title="full-sweep load profile",
                )
            )
            blocks.append(render_busy_bars(probe.cu_busy, width=40, label="cu"))
    return "\n\n".join(blocks)

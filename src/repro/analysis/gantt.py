"""ASCII Gantt rendering of execution timelines.

Turns a :class:`~repro.gpusim.trace.Timeline` into the text equivalent
of the paper's CU-activity figures: one row per pipe/CU/worker, time on
the x-axis, ``█`` where the unit is busy. Good enough to *see* the
static-mapping straggler and the flattening effect of stealing right in
a terminal or a test log.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.trace import Timeline

__all__ = ["render_gantt", "render_busy_bars"]


def render_gantt(
    timeline: Timeline,
    *,
    width: int = 72,
    busy_char: str = "█",
    idle_char: str = "·",
) -> str:
    """Render the timeline as one busy/idle row per pipe.

    Each column covers ``makespan / width`` cycles; a cell is busy if
    any interval overlaps it. Rows are labelled with the pipe id and its
    busy percentage.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    span = timeline.makespan
    lines = []
    busy_total = timeline.busy_per_pipe()
    if span == 0:
        return "\n".join(
            f"p{p:<3d} |{idle_char * width}|   0.0%" for p in range(timeline.num_pipes)
        )
    cell = span / width
    pipes, starts, ends = timeline.pipes, timeline.starts, timeline.ends
    for p in range(timeline.num_pipes):
        mask = pipes == p
        row = np.zeros(width, dtype=bool)
        for s, e in zip(starts[mask], ends[mask], strict=True):
            lo = int(s / cell)
            hi = min(int(np.ceil(e / cell)), width)
            if e > s:
                row[lo : max(hi, lo + 1)] = True
        pct = 100.0 * busy_total[p] / span
        cells = "".join(busy_char if b else idle_char for b in row)
        lines.append(f"p{p:<3d} |{cells}| {pct:5.1f}%")
    return "\n".join(lines)


def render_busy_bars(
    loads: np.ndarray, *, width: int = 50, label: str = "w"
) -> str:
    """Render per-worker loads as horizontal bars (normalized to max)."""
    x = np.asarray(loads, dtype=np.float64).ravel()
    if x.size == 0:
        return "(no workers)"
    if np.any(x < 0):
        raise ValueError("loads must be non-negative")
    peak = x.max()
    lines = []
    for i, v in enumerate(x):
        n = int(round(width * v / peak)) if peak > 0 else 0
        lines.append(f"{label}{i:<3d} {'█' * n}{' ' * (width - n)} {v:,.0f}")
    return "\n".join(lines)

"""Coloring-as-a-service: the HTTP face of the job server.

:class:`ServeApp` glues the pieces together — the ``jobs`` ledger in
the run store, the :class:`~repro.serve.executor.JobExecutor` worker
pool, and the server-wide :class:`~repro.obs.registry.MetricsRegistry`
— and exposes them as plain-JSON endpoints over TCP
(``ThreadingHTTPServer`` on localhost) or a Unix domain socket:

========================  ====================================================
``POST /jobs``            submit a spec (see :mod:`repro.serve.model`);
                          returns the job row, with ``deduped: true`` when an
                          equal-digest job was already queued/running/done
``GET  /jobs``            newest-first job listing (``?state=`` filter)
``GET  /jobs/<id>``       status poll (row without the result payload)
``GET  /jobs/<id>/result``  the finished rows (409 until ``done``)
``POST /jobs/<id>/cancel``  cooperative cancel (between cells)
``POST /jobs/<id>/restart`` re-queue a terminal job for a fresh attempt
``GET  /health``          liveness + queue depth + store schema
``GET  /metrics``         job counters, the metrics registry, store counts
========================  ====================================================

Submissions dedup by :func:`~repro.serve.model.spec_digest`: a repeat
of work that is queued, running, or already done returns the existing
job (poll it, fetch its cached result) instead of recomputing —
failed/cancelled attempts do not block a re-submit.

Request handling is per-request-connection: handler threads open a
short-lived :class:`~repro.store.db.RunStore` per call (WAL mode keeps
readers and the worker threads' writers out of each other's way), so
the ledger — not server memory — is the source of truth, and a
``kill``-ed server loses nothing but in-flight simulated cycles:
``ServeApp(recover=True)`` re-queues every non-terminal row at boot.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from ..obs.registry import MetricsRegistry
from ..store.db import TERMINAL_JOB_STATES, RunStore, _utcnow
from .executor import JobExecutor
from .model import SpecError, expand_spec, new_job_id, normalize_spec, spec_digest

__all__ = [
    "ApiError",
    "ServeApp",
    "make_server",
    "make_unix_server",
    "run_server",
]


class ApiError(Exception):
    """An error with an HTTP status (the handler turns it into JSON)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _job_view(row: dict[str, Any], *, with_result: bool = False) -> dict[str, Any]:
    """The wire shape of a job row (result stripped unless asked for)."""
    view = dict(row)
    view.pop("id", None)
    if not with_result:
        view.pop("result", None)
    view["spec"] = json.loads(row["spec"]) if isinstance(row["spec"], str) else row["spec"]
    return view


class ServeApp:
    """Server state + request logic, independent of the HTTP plumbing.

    Keeping the logic off the handler makes the whole lifecycle —
    submit, dedup, cancel, restart, recover, drain — drivable from
    tests without a socket in sight.
    """

    def __init__(
        self,
        store_path: str | Path,
        *,
        workers: int = 1,
        job_workers: int = 1,
        recover: bool = False,
    ) -> None:
        self.store_path = str(store_path)
        # create/migrate eagerly so a bad store fails at boot, not on
        # the first request
        RunStore(self.store_path).close()
        self.registry = MetricsRegistry()
        self.executor = JobExecutor(
            self.store_path,
            registry=self.registry,
            workers=workers,
            job_workers=job_workers,
        )
        self._submit_lock = threading.Lock()
        self.started_at = time.time()
        self.recovered: list[str] = []
        self.executor.start()
        if recover:
            self.recovered = self.recover()

    def open_store(self) -> RunStore:
        return RunStore(self.store_path)

    def close(self) -> None:
        self.executor.stop()

    # -- lifecycle verbs ------------------------------------------------

    def recover(self) -> list[str]:
        """Re-queue every non-terminal job; returns the re-queued ids."""
        with self.open_store() as store:
            ids = store.reset_interrupted_jobs()
        for job_id in ids:
            self.executor.submit(job_id, counter="recovered")
        return ids

    def submit(self, raw_spec: Any) -> tuple[dict[str, Any], bool]:
        """Validate, dedup, and enqueue; returns (job view, deduped?)."""
        try:
            spec = normalize_spec(raw_spec)
            digest = spec_digest(spec)
            plan = expand_spec(spec)
        except SpecError as exc:
            raise ApiError(400, str(exc)) from None
        with self._submit_lock, self.open_store() as store:
            for row in store.jobs_by_digest(digest):
                if row["state"] not in TERMINAL_JOB_STATES or row["state"] == "done":
                    self.executor._bump("deduped")
                    return _job_view(row), True
            job_id = new_job_id()
            store.insert_job(
                job_id=job_id,
                kind=spec["kind"],
                spec=json.dumps(spec, sort_keys=True),
                spec_digest=digest,
                cells=plan.num_cells,
            )
            row = store.job(job_id)
        self.executor.submit(job_id)
        assert row is not None
        return _job_view(row), False

    def _fetch(self, store: RunStore, job_id: str) -> dict[str, Any]:
        row = store.job(job_id)
        if row is None:
            raise ApiError(404, f"no job {job_id!r}")
        return row

    def job(self, job_id: str) -> dict[str, Any]:
        with self.open_store() as store:
            return _job_view(self._fetch(store, job_id))

    def result(self, job_id: str) -> dict[str, Any]:
        with self.open_store() as store:
            row = self._fetch(store, job_id)
        if row["state"] != "done":
            raise ApiError(
                409, f"job {job_id} is {row['state']}, not done; poll /jobs/{job_id}"
            )
        view = _job_view(row, with_result=True)
        view["result"] = json.loads(row["result"] or "[]")
        return view

    def cancel(self, job_id: str) -> dict[str, Any]:
        with self.open_store() as store:
            row = self._fetch(store, job_id)
            if row["state"] in TERMINAL_JOB_STATES:
                return _job_view(row)  # nothing left to cancel
            self.executor.cancel(job_id)
            if row["state"] == "queued":
                # not started yet: finalize right here; a worker that
                # dequeues it later sees the non-queued state and skips
                store.update_job(
                    job_id, state="cancelled", finished_at=_utcnow()
                )
            return _job_view(self._fetch(store, job_id))

    def restart(self, job_id: str) -> dict[str, Any]:
        with self.open_store() as store:
            row = self._fetch(store, job_id)
            if row["state"] not in TERMINAL_JOB_STATES:
                raise ApiError(
                    409, f"job {job_id} is {row['state']}; only terminal jobs restart"
                )
            store.update_job(
                job_id,
                state="queued",
                error="",
                result=None,
                cells_done=0,
                started_at=None,
                finished_at=None,
            )
            row = self._fetch(store, job_id)
        self.executor.submit(job_id)
        return _job_view(row)

    def jobs(
        self, *, state: str | None = None, limit: int = 50
    ) -> list[dict[str, Any]]:
        with self.open_store() as store:
            rows = store.list_jobs(state=state, limit=limit)
        return [_job_view(r) for r in rows]

    # -- introspection --------------------------------------------------

    def health(self) -> dict[str, Any]:
        with self.open_store() as store:
            schema = store.schema_version()
        return {
            "ok": True,
            "store": self.store_path,
            "schema": schema,
            "uptime_s": round(time.time() - self.started_at, 3),
            "inflight": self.executor.inflight,
            "workers": self.executor.workers,
            "job_workers": self.executor.job_workers,
            "recovered": len(self.recovered),
        }

    def metrics(self) -> dict[str, Any]:
        with self.open_store() as store:
            counts = store.counts()
        return {
            "jobs": self.executor.counters_snapshot(),
            "registry": self.executor.registry_snapshot(),
            "store": counts,
        }


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto a bound :class:`ServeApp`."""

    app: ServeApp  # bound by make_server via a subclass attribute
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the CLI prints its own lifecycle lines; requests stay quiet

    def address_string(self) -> str:
        # AF_UNIX peers have no (host, port); don't let logging blow up
        try:
            return super().address_string()
        except (IndexError, TypeError):  # pragma: no cover
            return "local"

    def _send_json(self, status: int, doc: Any) -> None:
        body = json.dumps(doc, indent=2).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"request body is not JSON: {exc}") from None

    def _route(self, method: str) -> None:
        from urllib.parse import parse_qs, urlparse

        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        try:
            self._dispatch(method, parts, query)
        except ApiError as exc:
            self._send_json(exc.status, {"error": exc.message})
        except Exception as exc:  # noqa: BLE001 - one request, one error
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _dispatch(self, method: str, parts: list[str], query: dict[str, str]) -> None:
        app = self.app
        if method == "GET" and parts == ["health"]:
            self._send_json(200, app.health())
        elif method == "GET" and parts == ["metrics"]:
            self._send_json(200, app.metrics())
        elif method == "GET" and parts == ["jobs"]:
            limit = int(query.get("limit", 50))
            self._send_json(
                200, {"jobs": app.jobs(state=query.get("state"), limit=limit)}
            )
        elif method == "POST" and parts == ["jobs"]:
            view, deduped = app.submit(self._read_body())
            self._send_json(200 if deduped else 201, {**view, "deduped": deduped})
        elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            self._send_json(200, app.job(parts[1]))
        elif len(parts) == 3 and parts[0] == "jobs":
            job_id, verb = parts[1], parts[2]
            if method == "GET" and verb == "result":
                self._send_json(200, app.result(job_id))
            elif method == "POST" and verb == "cancel":
                self._send_json(200, app.cancel(job_id))
            elif method == "POST" and verb == "restart":
                self._send_json(200, app.restart(job_id))
            else:
                raise ApiError(404, f"no such endpoint: {method} {self.path}")
        else:
            raise ApiError(404, f"no such endpoint: {method} {self.path}")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._route("POST")


class UnixHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to a Unix domain socket path."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        path = self.server_address
        assert isinstance(path, (str, bytes))
        Path(str(path)).unlink(missing_ok=True)  # stale socket from a kill
        self.socket.bind(path)
        self.server_name = str(path)
        self.server_port = 0


def _bind_handler(app: ServeApp) -> type[_Handler]:
    return type("BoundHandler", (_Handler,), {"app": app})


def make_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A TCP server for ``app``; ``port=0`` picks an ephemeral port."""
    server = ThreadingHTTPServer((host, port), _bind_handler(app))
    server.daemon_threads = True
    return server


def make_unix_server(app: ServeApp, socket_path: str | Path) -> UnixHTTPServer:
    """A Unix-domain-socket server for ``app``."""
    server = UnixHTTPServer(str(socket_path), _bind_handler(app))
    server.daemon_threads = True
    return server


def run_server(
    server: ThreadingHTTPServer,
    app: ServeApp,
    *,
    drain: bool = False,
    stop_event: threading.Event | None = None,
    poll_s: float = 0.1,
) -> None:
    """Serve until stopped (or, with ``drain``, until the queue empties).

    ``drain`` keeps every endpoint live while the executor finishes all
    known work, then exits — the deterministic shape CI's kill/recover
    smoke needs. ``stop_event`` is the signal-handler hook: setting it
    shuts the server down from any thread.
    """
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        if stop_event is None:
            stop_event = threading.Event()
        while not stop_event.is_set():
            if drain and app.executor.inflight == 0:
                break
            stop_event.wait(poll_s)
    finally:
        server.shutdown()
        server.server_close()
        app.close()
        thread.join(timeout=5.0)

"""Job executor — worker threads draining the ledger onto the harness.

The executor owns a queue of job ids and ``workers`` daemon threads.
Each thread opens its *own* :class:`~repro.store.db.RunStore`
connection (sqlite connections are thread-bound; WAL mode makes the
concurrent writers safe) and runs jobs through the ordinary harness
entry points — :func:`~repro.harness.batch.run_batch_cell` serially,
:func:`~repro.harness.batch.run_batch` with ``parallel_jobs`` when the
server was given ``--job-workers N`` — so a row recorded through the
server is bit-identical to one recorded by ``repro batch``/``repro
pipeline run``.

Lifecycle is cooperative: cancellation raises a flag the worker checks
between cells (a simulated kernel is not interruptible, a cell
boundary is), and every state transition is written to the ``jobs``
table *before* the work it describes, so a crash at any point leaves a
row ``--recover`` knows how to re-queue.

Each job runs traced into its own
:class:`~repro.obs.registry.MetricsRegistry`; on completion the
per-job aggregates are merged into the server-wide registry that
``/metrics`` serves. Tracing is cycle-identical (see
:mod:`repro.obs`), so the rows still match untraced serial runs.

Set :envvar:`REPRO_SERVE_TEST_DELAY_MS` to sleep that long after every
cell — a test hook that widens the window for exercising mid-job
cancellation and kill/recover without flaky timing.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from typing import TYPE_CHECKING

from ..engine.context import RunContext
from ..gpusim.device import named_device
from ..harness.batch import run_batch, run_batch_cell
from ..harness.suite import build
from ..obs.registry import MetricsRegistry
from ..store.db import RunStore, _jsonable, _utcnow
from ..store.recorder import Recorder
from .model import expand_spec

if TYPE_CHECKING:
    from ..graphs.csr import CSRGraph

__all__ = ["JobExecutor"]

#: queue sentinel that tells one worker thread to exit.
_STOP = object()

#: test hook: per-cell sleep, in milliseconds (see module docstring).
DELAY_ENV = "REPRO_SERVE_TEST_DELAY_MS"


def _test_delay_s() -> float:
    raw = os.environ.get(DELAY_ENV, "").strip()
    try:
        return max(0.0, float(raw)) / 1e3 if raw else 0.0
    except ValueError:
        return 0.0


class JobExecutor:
    """Runs queued jobs from the store's ledger (see module docstring)."""

    def __init__(
        self,
        store_path: str,
        *,
        registry: MetricsRegistry | None = None,
        workers: int = 1,
        job_workers: int = 1,
    ) -> None:
        self.store_path = str(store_path)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.workers = max(1, int(workers))
        self.job_workers = max(1, int(job_workers))
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight: set[str] = set()
        self._cancel: dict[str, threading.Event] = {}
        self._threads: list[threading.Thread] = []
        self.counters: dict[str, int] = {
            "submitted": 0,
            "deduped": 0,
            "recovered": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "cells_run": 0,
        }

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker, name=f"serve-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def stop(self, timeout: float = 10.0) -> None:
        """Ask every worker to exit and join them (idempotent)."""
        for _ in self._threads:
            self._queue.put(_STOP)
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads.clear()

    # -- submission and control ----------------------------------------

    def submit(self, job_id: str, *, counter: str = "submitted") -> None:
        """Enqueue a job the caller already inserted into the ledger."""
        with self._idle:
            self._inflight.add(job_id)
            self.counters[counter] += 1
        self._queue.put(job_id)

    def cancel(self, job_id: str) -> None:
        """Raise the cancel flag; the worker honors it between cells."""
        self._cancel_event(job_id).set()

    def _cancel_event(self, job_id: str) -> threading.Event:
        with self._lock:
            event = self._cancel.get(job_id)
            if event is None:
                event = self._cancel[job_id] = threading.Event()
            return event

    @property
    def inflight(self) -> int:
        """Jobs enqueued or executing right now."""
        with self._lock:
            return len(self._inflight)

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no job is queued or running; False on timeout."""
        with self._idle:
            return self._idle.wait_for(lambda: not self._inflight, timeout=timeout)

    def merge_registry(self, job_registry: MetricsRegistry) -> None:
        with self._lock:
            self.registry.merge(job_registry)

    def registry_snapshot(self) -> dict[str, object]:
        with self._lock:
            return self.registry.to_dict()

    def counters_snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.counters)

    def _bump(self, counter: str, n: int = 1) -> None:
        with self._lock:
            self.counters[counter] += n

    # -- execution ------------------------------------------------------

    def _worker(self) -> None:
        store = RunStore(self.store_path)
        try:
            while True:
                item = self._queue.get()
                if item is _STOP:
                    return
                try:
                    self._execute(store, item)
                except Exception as exc:  # noqa: BLE001 - job isolation
                    self._fail(store, item, exc)
                finally:
                    with self._idle:
                        self._inflight.discard(item)
                        self._cancel.pop(item, None)
                        self._idle.notify_all()
        finally:
            store.close()

    def _fail(self, store: RunStore, job_id: str, exc: Exception) -> None:
        self._bump("failed")
        try:
            store.update_job(
                job_id,
                state="failed",
                error=f"{type(exc).__name__}: {exc}",
                finished_at=_utcnow(),
            )
        except Exception:  # noqa: BLE001 - the ledger itself is down
            pass

    def _execute(self, store: RunStore, job_id: str) -> None:
        job = store.job(job_id)
        if job is None or job["state"] != "queued":
            # cancelled (or otherwise finalized) while waiting in queue
            return
        event = self._cancel_event(job_id)
        if event.is_set():
            self._bump("cancelled")
            store.update_job(job_id, state="cancelled", finished_at=_utcnow())
            return
        store.update_job(
            job_id,
            state="running",
            attempts=int(job["attempts"]) + 1,
            started_at=_utcnow(),
            error="",
        )
        spec = json.loads(job["spec"])
        plan = expand_spec(spec)
        device = named_device(plan.device)
        ctx = RunContext(device=device)
        job_registry = MetricsRegistry()
        # small ring: /metrics only needs the registry's exact aggregates
        ctx.enable_tracing(capacity=256, registry=job_registry)
        recorder = Recorder(store, scale=plan.scale, source="serve")
        delay = _test_delay_s()
        graphs: dict[str, CSRGraph] = {}
        rows: list[dict[str, object]] = []
        cancelled = False
        for source, cells in plan.groups:
            group_recorder = recorder.with_source(source)
            chunk = self.job_workers
            for lo in range(0, len(cells), chunk):
                if event.is_set():
                    cancelled = True
                    break
                part = list(cells[lo : lo + chunk])
                if self.job_workers > 1 and len(part) > 1:
                    rows.extend(
                        run_batch(
                            part,
                            device=device,
                            scale=plan.scale,
                            context=ctx,
                            parallel_jobs=self.job_workers,
                            recorder=group_recorder,
                        )
                    )
                else:
                    for cell in part:
                        graph = graphs.get(cell.dataset)
                        if graph is None:
                            graph = graphs[cell.dataset] = build(
                                cell.dataset, plan.scale
                            )
                        rows.append(
                            run_batch_cell(
                                cell,
                                graph,
                                ctx,
                                device=device,
                                recorder=group_recorder,
                                scale=plan.scale,
                            )
                        )
                if delay:
                    time.sleep(delay)
                store.update_job(job_id, cells_done=len(rows))
            if cancelled:
                break
        if cancelled:
            self._bump("cancelled")
            store.update_job(
                job_id,
                state="cancelled",
                finished_at=_utcnow(),
                cells_done=len(rows),
            )
        else:
            self._bump("completed")
            self._bump("cells_run", len(rows))
            store.update_job(
                job_id,
                state="done",
                finished_at=_utcnow(),
                result=json.dumps(_jsonable(rows)),
                cells_done=len(rows),
            )
        self.merge_registry(job_registry)

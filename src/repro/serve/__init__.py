"""Coloring-as-a-service: an async job server over the run store.

``repro serve`` turns the harness into a long-lived service: clients
submit coloring work (single runs, sweeps, batch matrices, pipelines)
as JSON over HTTP — localhost TCP or a Unix socket — and poll for
results while a worker pool executes on the simulator. Job state lives
in the run store's ``jobs`` table, so a killed server restarts with
``--recover`` and finishes what it started; duplicate submissions
dedup by content digest and return the cached result.

Layers: :mod:`~repro.serve.model` (specs, validation, dedup digest) →
:mod:`~repro.serve.executor` (worker threads on the harness) →
:mod:`~repro.serve.app` (HTTP endpoints) → :mod:`~repro.serve.client`
(the bundled submit/poll/fetch client).
"""

from .app import ApiError, ServeApp, make_server, make_unix_server, run_server
from .client import ServeClient, ServeError
from .executor import JobExecutor
from .model import (
    JOB_KINDS,
    JobPlan,
    SpecError,
    expand_spec,
    new_job_id,
    normalize_spec,
    spec_digest,
)

__all__ = [
    "ApiError",
    "JOB_KINDS",
    "JobExecutor",
    "JobPlan",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "SpecError",
    "expand_spec",
    "make_server",
    "make_unix_server",
    "new_job_id",
    "normalize_spec",
    "run_server",
    "spec_digest",
]

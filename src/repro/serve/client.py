"""Bundled client for the job server — over TCP or a Unix socket.

The quickstart loop is submit → poll → fetch::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8932")
    job = client.submit({"kind": "color", "dataset": "uniform-random"})
    done = client.wait(job["job_id"])
    rows = client.result(job["job_id"])["result"]

Unix-socket servers are addressed by path::

    client = ServeClient(socket_path="/tmp/repro-serve.sock")

The client is deliberately thin — stdlib :mod:`http.client`, one
connection per call (the server is threaded; keep-alive would buy
nothing for a polling client and would pin handler threads), and
:class:`ServeError` carrying the HTTP status plus the server's
``error`` message for anything non-2xx.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any
from urllib.parse import urlsplit

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """A non-2xx response from the job server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``HTTPConnection`` that dials a Unix domain socket path."""

    def __init__(self, socket_path: str, timeout: float) -> None:
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class ServeClient:
    """Talks to one job server (see module docstring for the loop)."""

    def __init__(
        self,
        url: str | None = None,
        *,
        socket_path: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        if (url is None) == (socket_path is None):
            raise ValueError("pass exactly one of url= or socket_path=")
        self.timeout = float(timeout)
        self.socket_path = socket_path
        if url is not None:
            parts = urlsplit(url if "//" in url else f"http://{url}")
            if parts.scheme not in ("", "http"):
                raise ValueError(f"only http:// URLs are supported, got {url!r}")
            self.host = parts.hostname or "127.0.0.1"
            self.port = parts.port or 80
        else:
            self.host = self.port = None  # type: ignore[assignment]

    # -- transport ------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self.socket_path is not None:
            return _UnixHTTPConnection(self.socket_path, self.timeout)
        assert self.host is not None and self.port is not None
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def request(self, method: str, path: str, body: Any = None) -> Any:
        """One JSON round-trip; raises :class:`ServeError` on non-2xx."""
        conn = self._connect()
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                doc = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                doc = {"error": raw.decode(errors="replace")}
            if resp.status >= 400:
                raise ServeError(resp.status, str(doc.get("error", raw)))
            return doc
        finally:
            conn.close()

    # -- endpoints ------------------------------------------------------

    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        """Submit a job spec; the returned view includes ``deduped``."""
        return self.request("POST", "/jobs", spec)

    def job(self, job_id: str) -> dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request("POST", f"/jobs/{job_id}/cancel")

    def restart(self, job_id: str) -> dict[str, Any]:
        return self.request("POST", f"/jobs/{job_id}/restart")

    def jobs(self, *, state: str | None = None, limit: int = 50) -> list[dict]:
        path = f"/jobs?limit={limit}"
        if state:
            path += f"&state={state}"
        return self.request("GET", path)["jobs"]

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/health")

    def metrics(self) -> dict[str, Any]:
        return self.request("GET", "/metrics")

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll_s: float = 0.2
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its view.

        Raises :class:`TimeoutError` if the deadline passes first (the
        job keeps running server-side; this only stops the waiting).
        """
        from ..store.db import TERMINAL_JOB_STATES

        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in TERMINAL_JOB_STATES:
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['state']} after {timeout}s"
                )
            time.sleep(poll_s)

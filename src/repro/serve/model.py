"""Job model — specs, validation, expansion, and the dedup digest.

A *job* is a request the server (:mod:`repro.serve.app`) accepts over
the wire: a plain-JSON spec naming one of four kinds of work, all of
which reduce to the same thing — an ordered list of
:class:`~repro.harness.batch.BatchJob` cells at one scale on one
device:

* ``color`` — a single coloring run (one cell);
* ``sweep`` — one parameter swept over several values (one cell per
  value, mirroring ``repro sweep``);
* ``batch`` — a datasets × algorithms matrix (``repro batch``);
* ``pipeline`` — a built-in or inline declarative pipeline
  (:mod:`repro.store.pipeline`); its cells keep their per-step
  ``pipeline:<name>/<step>`` source tags, so rows recorded through the
  server are bit-identical to ``repro pipeline run``.

:func:`normalize_spec` validates a raw spec against the same registries
the CLI uses (suite datasets, GPU algorithms, mappings, schedules,
scales) and fills defaults, so two submissions that mean the same work
normalize identically. :func:`spec_digest` then hashes the *expanded*
plan — per-cell ``config_digest`` via the run store's digest machinery
plus the (dataset, scale) pair that deterministically fixes the graph
content — giving the server its request-dedup key: same digest ⇒ same
cells ⇒ the cached or in-flight result can be returned instead of
recomputing.
"""

from __future__ import annotations

import hashlib
import json
import uuid
from dataclasses import dataclass
from typing import Any

from ..coloring.kernels import MAPPINGS, SCHEDULES
from ..gpusim.device import named_device
from ..harness.batch import BatchJob
from ..harness.runner import GPU_ALGORITHMS
from ..harness.suite import SCALES, SUITE
from ..store.db import config_digest

__all__ = [
    "JOB_KINDS",
    "JobPlan",
    "SpecError",
    "expand_spec",
    "new_job_id",
    "normalize_spec",
    "spec_digest",
]

#: accepted values of a spec's ``kind`` field.
JOB_KINDS = ("color", "sweep", "batch", "pipeline")

#: parameters ``sweep`` jobs may vary (mirrors the CLI).
SWEEP_PARAMETERS = ("chunk_size", "degree_threshold", "workgroup_size")


class SpecError(ValueError):
    """A submitted job spec is malformed (HTTP 400 on the wire)."""


def new_job_id() -> str:
    """A fresh, collision-safe job id."""
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class JobPlan:
    """A spec expanded into executable cells.

    ``groups`` pairs each contiguous run of cells with the ``source``
    tag its store rows carry — plain jobs record as ``"serve"``,
    pipeline steps keep their ``pipeline:<name>/<step>`` tags.
    """

    scale: str
    device: str
    groups: tuple[tuple[str, tuple[BatchJob, ...]], ...]

    @property
    def num_cells(self) -> int:
        return sum(len(cells) for _, cells in self.groups)

    @property
    def cells(self) -> list[BatchJob]:
        return [c for _, cells in self.groups for c in cells]


def _require(spec: dict, key: str, kind: str) -> Any:
    if key not in spec:
        raise SpecError(f"{kind} spec needs {key!r}")
    return spec[key]


def _check_dataset(name: Any) -> str:
    if name not in SUITE:
        raise SpecError(
            f"unknown dataset {name!r}; known: {', '.join(SUITE)}"
        )
    return str(name)


def _check_choice(value: Any, field: str, choices) -> str:
    if value not in choices:
        raise SpecError(
            f"unknown {field} {value!r}; known: {', '.join(sorted(choices))}"
        )
    return str(value)


def _check_device(name: Any) -> str:
    try:
        named_device(str(name))
    except KeyError as exc:
        raise SpecError(str(exc)) from None
    return str(name)


def _check_config(raw: Any) -> dict[str, Any]:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise SpecError(f"config must be an object, got {type(raw).__name__}")
    return {str(k): v for k, v in raw.items()}


def normalize_spec(raw: Any) -> dict[str, Any]:
    """Validate a raw spec and return its canonical form.

    The canonical spec is plain JSON data with every default resolved,
    so equal work normalizes to equal documents. Raises
    :class:`SpecError` on anything malformed.
    """
    if not isinstance(raw, dict):
        raise SpecError(f"job spec must be an object, got {type(raw).__name__}")
    kind = _check_choice(raw.get("kind"), "job kind", JOB_KINDS)
    spec: dict[str, Any] = {"kind": kind}
    if kind != "pipeline":
        spec["scale"] = _check_choice(raw.get("scale", "tiny"), "scale", SCALES)
        spec["mapping"] = _check_choice(
            raw.get("mapping", "thread"), "mapping", MAPPINGS
        )
        spec["schedule"] = _check_choice(
            raw.get("schedule", "grid"), "schedule", SCHEDULES
        )
        try:
            spec["seed"] = int(raw.get("seed", 0))
        except (TypeError, ValueError):
            raise SpecError(f"seed must be an integer, got {raw.get('seed')!r}") from None
    spec["device"] = _check_device(raw.get("device", "hd7950"))

    if kind == "color":
        spec["dataset"] = _check_dataset(_require(raw, "dataset", kind))
        spec["algorithm"] = _check_choice(
            raw.get("algorithm", "maxmin"), "algorithm", GPU_ALGORITHMS
        )
        spec["config"] = _check_config(raw.get("config"))
    elif kind == "sweep":
        spec["dataset"] = _check_dataset(_require(raw, "dataset", kind))
        spec["algorithm"] = _check_choice(
            raw.get("algorithm", "maxmin"), "algorithm", GPU_ALGORITHMS
        )
        spec["parameter"] = _check_choice(
            raw.get("parameter", "chunk_size"), "sweep parameter", SWEEP_PARAMETERS
        )
        values = _require(raw, "values", kind)
        if not isinstance(values, (list, tuple)) or not values:
            raise SpecError("sweep 'values' must be a non-empty list of integers")
        try:
            spec["values"] = [int(v) for v in values]
        except (TypeError, ValueError):
            raise SpecError(f"sweep values must be integers, got {values!r}") from None
    elif kind == "batch":
        datasets = _require(raw, "datasets", kind)
        if datasets == "all":
            datasets = list(SUITE)
        if not isinstance(datasets, (list, tuple)) or not datasets:
            raise SpecError("batch 'datasets' must be a non-empty list (or 'all')")
        spec["datasets"] = [_check_dataset(d) for d in datasets]
        algorithms = raw.get("algorithms", ["maxmin"])
        if algorithms == "all":
            algorithms = sorted(GPU_ALGORITHMS)
        if not isinstance(algorithms, (list, tuple)) or not algorithms:
            raise SpecError("batch 'algorithms' must be a non-empty list (or 'all')")
        spec["algorithms"] = [
            _check_choice(a, "algorithm", GPU_ALGORITHMS) for a in algorithms
        ]
        spec["config"] = _check_config(raw.get("config"))
    else:  # pipeline
        pipeline = _require(raw, "pipeline", kind)
        if isinstance(pipeline, str):
            from ..store.pipeline import PIPELINES

            _check_choice(pipeline, "pipeline", PIPELINES)
            spec["pipeline"] = pipeline
        elif isinstance(pipeline, dict):
            from ..store.pipeline import pipeline_from_spec

            try:
                spec["pipeline"] = pipeline_from_spec(pipeline).to_spec()
            except ValueError as exc:
                raise SpecError(f"bad inline pipeline: {exc}") from None
        else:
            raise SpecError("'pipeline' must be a built-in name or an inline spec")
        scale = raw.get("scale")
        if scale is not None:
            spec["scale"] = _check_choice(scale, "scale", SCALES)
    return spec


def expand_spec(spec: dict[str, Any]) -> JobPlan:
    """Expand a canonical spec into its executable :class:`JobPlan`."""
    kind = spec["kind"]
    if kind == "pipeline":
        from ..store.pipeline import PIPELINES, pipeline_from_spec

        raw = spec["pipeline"]
        pipeline = PIPELINES[raw] if isinstance(raw, str) else pipeline_from_spec(raw)
        scale = spec.get("scale") or pipeline.scale
        groups = tuple(
            (f"pipeline:{pipeline.name}/{step.name}", tuple(step.jobs()))
            for step in pipeline.steps
        )
        return JobPlan(scale=scale, device=spec["device"], groups=groups)

    common = {
        "mapping": spec["mapping"],
        "schedule": spec["schedule"],
        "seed": spec["seed"],
    }
    if kind == "color":
        cells = [
            BatchJob(
                dataset=spec["dataset"],
                algorithm=spec["algorithm"],
                config=dict(spec["config"]),
                **common,
            )
        ]
    elif kind == "sweep":
        cells = []
        for value in spec["values"]:
            config = {spec["parameter"]: value}
            if spec["parameter"] == "workgroup_size":
                config["chunk_size"] = max(256, value)
            cells.append(
                BatchJob(
                    dataset=spec["dataset"],
                    algorithm=spec["algorithm"],
                    config=config,
                    label=f"{spec['dataset']}:{spec['parameter']}={value}",
                    **common,
                )
            )
    else:  # batch
        cells = [
            BatchJob(
                dataset=ds,
                algorithm=algo,
                config=dict(spec["config"]),
                **common,
            )
            for ds in spec["datasets"]
            for algo in spec["algorithms"]
        ]
    return JobPlan(
        scale=spec["scale"],
        device=spec["device"],
        groups=(("serve", tuple(cells)),),
    )


def spec_digest(spec: dict[str, Any]) -> str:
    """Content digest of the *work* a canonical spec describes.

    Built from the expanded plan, not the spec text: each cell
    contributes its (dataset, seed) identity plus the run store's
    ``config_digest`` of its effective knobs, and the plan contributes
    scale and device. Suite graphs are deterministic functions of
    (dataset, scale), so equal digests mean equal graph *content* and
    equal configs — exactly the run store's dedup key, which is what
    lets the server hand back a cached result for a repeat submission.
    """
    plan = expand_spec(spec)
    doc = {
        "kind": spec["kind"],
        "scale": plan.scale,
        "device": plan.device,
        "groups": [
            {
                "source": source,
                "cells": [
                    {
                        "dataset": c.dataset,
                        "seed": c.seed,
                        "config_digest": config_digest(
                            c.algorithm,
                            {
                                "mapping": c.mapping,
                                "schedule": c.schedule,
                                **c.config,
                            },
                        ),
                    }
                    for c in cells
                ],
            }
            for source, cells in plan.groups
        ],
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()
